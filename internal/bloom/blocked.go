package bloom

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/hashx"
)

// BlockWords is the number of 64-bit words per blocked-filter block:
// 8 words = 512 bits = one cache line on every mainstream CPU. Putze,
// Sanders & Singler ("Cache-, Hash- and Space-Efficient Bloom
// Filters", 2007) and Friedman's sketch evaluation both identify this
// blocking as the dominant software optimization for Bloom filters:
// an Add or Contains touches exactly one cache line instead of k.
const BlockWords = 8

// blockBits is the bit capacity of one block (512).
const blockBits = BlockWords * 64

// BlockedFilter is a cache-line-blocked Bloom filter: the first hash
// stream picks one 512-bit block, the second derives all k bit
// positions inside that block. Updates and queries cost one memory
// access (plus ALU work) regardless of k, which is what makes the
// blocked variant several times faster than the classic filter once
// the bit array outgrows the L2 cache (experiment E28).
//
// The price is a slightly higher false-positive rate at equal bits per
// item: block occupancies fluctuate (some blocks receive more items
// than m/512 would suggest), and overloaded blocks dominate the FPR.
// TheoreticalBlockedFPR computes the exact Poisson-mixture bound the
// property tests check measured rates against.
//
// Like the classic filter there are no false negatives, and filters
// with equal shape and seed merge by bitwise OR.
type BlockedFilter struct {
	bits   []uint64
	blocks uint64 // number of 512-bit blocks; m = blocks * 512
	k      int
	seed   uint64
	n      uint64
}

// NewBlocked creates a blocked filter with at least m bits (rounded up
// to a whole number of 512-bit blocks) and k bit probes per item.
func NewBlocked(m uint64, k int, seed uint64) *BlockedFilter {
	if m == 0 {
		panic("bloom: m must be positive")
	}
	if k < 1 || k > maxBlockedK {
		panic("bloom: blocked k must be in [1,64]")
	}
	blocks := (m + blockBits - 1) / blockBits
	return &BlockedFilter{
		bits:   make([]uint64, blocks*BlockWords),
		blocks: blocks,
		k:      k,
		seed:   seed,
	}
}

// maxBlockedK bounds the probes per block: past 64 of 512 bits per
// item the filter is mis-sized anyway, and the bound keeps decode-time
// validation meaningful.
const maxBlockedK = 64

// NewBlockedWithEstimates sizes a blocked filter for n expected items
// at target false-positive rate p using the same optimal-m/k formulas
// as the classic filter. The realized FPR lands slightly above p (the
// blocking penalty); callers needing the exact classic rate should
// oversize m by ~15-30% or use New.
func NewBlockedWithEstimates(n uint64, p float64, seed uint64) *BlockedFilter {
	if n == 0 {
		n = 1
	}
	if !(p > 0 && p < 1) {
		panic("bloom: false positive rate must be in (0,1)")
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	if m == 0 {
		m = 1
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > maxBlockedK {
		k = maxBlockedK
	}
	return NewBlocked(m, k, seed)
}

// blockBase returns the first word index of the block h1 selects.
func (f *BlockedFilter) blockBase(h1 uint64) uint64 {
	return hashx.FastRange(h1, f.blocks) * BlockWords
}

// Probe positions inside a block are consumed directly from h2, nine
// bits per probe: probe j reads bits [9j, 9j+9) of the current probe
// word, and after seven probes (63 bits) the word is remixed so any k
// up to 64 stays uniform. Direct extraction keeps the k probes
// independent in the out-of-order window — a stride walk would chain
// each position on the previous one — and sampling with replacement is
// exactly the model TheoreticalBlockedFPR prices.
const (
	probeBitsPerWord = 7
	probeShift       = 9
)

// nextProbeWord remixes the probe stream once the current word's 63
// usable bits are consumed.
func nextProbeWord(w uint64) uint64 { return hashx.Mix64(w) }

// Add inserts an item: one 128-bit hash pass, one cache-line block.
func (f *BlockedFilter) Add(item []byte) {
	h1, h2 := hashx.Murmur3_128(item, f.seed)
	f.AddHash(h1, h2)
}

// AddString inserts a string item without copying or allocating.
func (f *BlockedFilter) AddString(item string) {
	h1, h2 := hashx.Murmur3_128String(item, f.seed)
	f.AddHash(h1, h2)
}

// AddHash inserts an item from its pre-computed 128-bit hash; h1
// selects the block, h2 the bits within it. Add(item) is exactly
// equivalent to AddHash(hashx.Murmur3_128(item, seed)).
func (f *BlockedFilter) AddHash(h1, h2 uint64) {
	base := f.blockBase(h1)
	block := f.bits[base : base+BlockWords : base+BlockWords]
	k, w := f.k, h2
	for {
		steps := k
		if steps > probeBitsPerWord {
			steps = probeBitsPerWord
		}
		for j := 0; j < steps; j++ {
			pos := w & (blockBits - 1)
			block[pos>>6] |= 1 << (pos & 63)
			w >>= probeShift
		}
		if k -= steps; k == 0 {
			break
		}
		h2 = nextProbeWord(h2)
		w = h2
	}
	f.n++
}

// AddBatch inserts many items with the two-phase pipelined loop
// (hash-all-then-update-all over fixed chunks); the final state is
// identical to calling Add on each item in order.
func (f *BlockedFilter) AddBatch(items [][]byte) {
	var h1s, h2s [ingestChunk]uint64
	for len(items) > 0 {
		c := len(items)
		if c > ingestChunk {
			c = ingestChunk
		}
		for i, item := range items[:c] {
			h1s[i], h2s[i] = hashx.Murmur3_128(item, f.seed)
		}
		f.AddHashBatch(h1s[:c], h2s[:c])
		items = items[c:]
	}
}

// AddHashBatch folds many pre-hashed items in, separating the
// address-derivation stream from the memory stream: all block bases
// for a chunk are computed first, then the bit-set loop runs over
// them, so the independent cache-line writes overlap instead of
// serializing behind each item's address math. State is identical to
// calling AddHash per pair. Both slices must have equal length.
func (f *BlockedFilter) AddHashBatch(h1s, h2s []uint64) {
	if len(h1s) != len(h2s) {
		panic("bloom: AddHashBatch slice lengths differ")
	}
	var bases [ingestChunk]uint64
	for start := 0; start < len(h1s); start += ingestChunk {
		end := start + ingestChunk
		if end > len(h1s) {
			end = len(h1s)
		}
		c1, c2 := h1s[start:end], h2s[start:end]
		// Phase 1: pure ALU — block bases for the whole chunk.
		for i, h1 := range c1 {
			bases[i] = f.blockBase(h1)
		}
		// Phase 2: memory — one cache line per item, no address math
		// left on the critical path.
		for i, h2 := range c2 {
			base := bases[i]
			block := f.bits[base : base+BlockWords : base+BlockWords]
			k, w := f.k, h2
			for {
				steps := k
				if steps > probeBitsPerWord {
					steps = probeBitsPerWord
				}
				for j := 0; j < steps; j++ {
					pos := w & (blockBits - 1)
					block[pos>>6] |= 1 << (pos & 63)
					w >>= probeShift
				}
				if k -= steps; k == 0 {
					break
				}
				h2 = nextProbeWord(h2)
				w = h2
			}
		}
		f.n += uint64(len(c1))
	}
}

// Contains reports whether the item may be in the set. False positives
// occur at the blocked rate; false negatives never occur.
func (f *BlockedFilter) Contains(item []byte) bool {
	h1, h2 := hashx.Murmur3_128(item, f.seed)
	return f.ContainsHash(h1, h2)
}

// ContainsString reports membership for a string item without copying
// or allocating.
func (f *BlockedFilter) ContainsString(item string) bool {
	h1, h2 := hashx.Murmur3_128String(item, f.seed)
	return f.ContainsHash(h1, h2)
}

// ContainsHash answers a membership query from a pre-computed 128-bit
// hash, probing the same block and bits AddHash sets.
func (f *BlockedFilter) ContainsHash(h1, h2 uint64) bool {
	base := f.blockBase(h1)
	block := f.bits[base : base+BlockWords : base+BlockWords]
	k, w := f.k, h2
	for {
		steps := k
		if steps > probeBitsPerWord {
			steps = probeBitsPerWord
		}
		for j := 0; j < steps; j++ {
			pos := w & (blockBits - 1)
			if block[pos>>6]&(1<<(pos&63)) == 0 {
				return false
			}
			w >>= probeShift
		}
		if k -= steps; k == 0 {
			return true
		}
		h2 = nextProbeWord(h2)
		w = h2
	}
}

// Update implements the core.Updater streaming interface.
func (f *BlockedFilter) Update(item []byte) { f.Add(item) }

// M returns the number of bits (always a multiple of 512).
func (f *BlockedFilter) M() uint64 { return f.blocks * blockBits }

// Blocks returns the number of 512-bit blocks.
func (f *BlockedFilter) Blocks() uint64 { return f.blocks }

// K returns the number of bit probes per item.
func (f *BlockedFilter) K() int { return f.k }

// N returns the number of insertions performed (including duplicates).
func (f *BlockedFilter) N() uint64 { return f.n }

// Seed returns the hash seed.
func (f *BlockedFilter) Seed() uint64 { return f.seed }

// FillRatio returns the fraction of set bits.
func (f *BlockedFilter) FillRatio() float64 {
	var ones int
	for _, w := range f.bits {
		ones += popcount(w)
	}
	return float64(ones) / float64(f.M())
}

// EstimatedFPR predicts the current false positive rate from the fill
// ratio, fill^k. For the blocked filter this is a floor: block-load
// variance pushes the realized rate somewhat above it (see
// TheoreticalBlockedFPR for the exact mixture).
func (f *BlockedFilter) EstimatedFPR() float64 {
	return math.Pow(f.FillRatio(), float64(f.k))
}

// TheoreticalBlockedFPR returns the blocked filter's expected false
// positive rate after n distinct insertions into blocks of 512 bits:
// the number of items landing in a query's block is Poisson(λ) with
// λ = 512·n/m, and a block holding i items behaves as a classic filter
// with 512 bits and i insertions, so
//
//	FPR = Σ_i Pois_λ(i) · (1 − e^{−k·i/512})^k.
//
// This is the bound the E28 property test checks measured rates
// against; it always dominates the classic TheoreticalFPR(m, k, n).
func TheoreticalBlockedFPR(m uint64, k int, n uint64) float64 {
	blocks := (m + blockBits - 1) / blockBits
	lambda := float64(n) / float64(blocks)
	// Walk the Poisson pmf iteratively until the tail is negligible.
	p := math.Exp(-lambda) // P[i=0]
	sum := 0.0
	cum := 0.0
	for i := 0; cum < 1-1e-12 && i < 64*int(lambda+8); i++ {
		if i > 0 {
			p *= lambda / float64(i)
		}
		cum += p
		sum += p * math.Pow(1-math.Exp(-float64(k)*float64(i)/blockBits), float64(k))
	}
	return sum
}

// Merge ORs another blocked filter into this one; the result
// represents the union of both sets. Shapes and seeds must match.
func (f *BlockedFilter) Merge(other *BlockedFilter) error {
	if f.blocks != other.blocks || f.k != other.k || f.seed != other.seed {
		return fmt.Errorf("%w: blocked bloom shapes (blocks=%d,k=%d,seed=%d) vs (blocks=%d,k=%d,seed=%d)",
			core.ErrIncompatible, f.blocks, f.k, f.seed, other.blocks, other.k, other.seed)
	}
	for i, w := range other.bits {
		f.bits[i] |= w
	}
	f.n += other.n
	return nil
}

// Clone returns a deep copy.
func (f *BlockedFilter) Clone() *BlockedFilter {
	c := *f
	c.bits = append([]uint64(nil), f.bits...)
	return &c
}

// SizeBytes returns the in-memory size of the bit array.
func (f *BlockedFilter) SizeBytes() int { return len(f.bits) * 8 }

// Words exposes the raw bit words (read-only) so hash-compatible
// external representations — notably concurrent.AtomicBlockedBloom —
// can exchange state with this filter.
func (f *BlockedFilter) Words() []uint64 { return f.bits }

// NewBlockedFromWords reconstitutes a filter from raw words produced
// by a hash-compatible peer (same blocks, k and seed imply identical
// addressing). words must hold blocks*8 values and is copied.
func NewBlockedFromWords(blocks uint64, k int, seed uint64, words []uint64, n uint64) (*BlockedFilter, error) {
	if blocks == 0 || k < 1 || k > maxBlockedK || uint64(len(words)) != blocks*BlockWords {
		return nil, fmt.Errorf("%w: %d words for a %d-block filter",
			core.ErrIncompatible, len(words), blocks)
	}
	f := NewBlocked(blocks*blockBits, k, seed)
	copy(f.bits, words)
	f.n = n
	return f, nil
}

// MarshalBinary serializes the filter under its own wire tag (the
// blocked layout addresses different bits than the classic filter, so
// the formats must never be confused). Version 1.
func (f *BlockedFilter) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagBlockedBloom, 1)
	w.U64(f.blocks)
	w.U32(uint32(f.k))
	w.U64(f.seed)
	w.U64(f.n)
	w.U64Slice(f.bits)
	return w.Bytes(), nil
}

// UnmarshalBinary restores a filter serialized by MarshalBinary.
func (f *BlockedFilter) UnmarshalBinary(data []byte) error {
	r, _, err := core.NewReaderVersioned(data, core.TagBlockedBloom, 1)
	if err != nil {
		return err
	}
	blocks := r.U64()
	k := int(r.U32())
	seed := r.U64()
	n := r.U64()
	bits := r.U64Slice()
	if err := r.Done(); err != nil {
		return err
	}
	// k is bounded for the same fuzz-found reason as the classic
	// filter: a corrupt k must not turn the first post-decode probe
	// loop into a spin.
	if blocks == 0 || k < 1 || k > maxBlockedK || uint64(len(bits)) != blocks*BlockWords {
		return fmt.Errorf("%w: inconsistent blocked bloom dimensions", core.ErrCorrupt)
	}
	f.blocks, f.k, f.seed, f.n, f.bits = blocks, k, seed, n, bits
	return nil
}
