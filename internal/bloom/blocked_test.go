package bloom

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/hashx"
)

func TestBlockedNoFalseNegatives(t *testing.T) {
	// The no-false-negative guarantee must hold on every insert path:
	// scalar Add, string Add, and both pipelined batch loops.
	f := NewBlockedWithEstimates(20000, 0.01, 1)
	const n = 20000
	var batch [][]byte
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			f.Add(key(i))
		case 1:
			f.AddString(string(key(i)))
		case 2:
			batch = append(batch, key(i))
		case 3:
			h1, h2 := hashx.Murmur3_128(key(i), f.Seed())
			f.AddHashBatch([]uint64{h1}, []uint64{h2})
		}
	}
	f.AddBatch(batch)
	for i := 0; i < n; i++ {
		if !f.Contains(key(i)) {
			t.Fatalf("false negative for inserted key %d", i)
		}
		if !f.ContainsString(string(key(i))) {
			t.Fatalf("string false negative for inserted key %d", i)
		}
	}
	if f.N() != n {
		t.Fatalf("N() = %d, want %d", f.N(), n)
	}
}

func TestBlockedFPRWithinBlockedBound(t *testing.T) {
	// At equal bits per item the blocked filter pays a known FPR
	// penalty over the classic filter: the Poisson mixture
	// TheoreticalBlockedFPR. The measured rate must stay within that
	// bound (modulo sampling noise) and the bound itself must dominate
	// the classic formula.
	const n = 50000
	classic := NewWithEstimates(n, 0.01, 7)
	blocked := NewBlocked(classic.M(), classic.K(), 7) // equal bits/item, equal k
	for i := 0; i < n; i++ {
		classic.Add(key(i))
		blocked.Add(key(i))
	}
	const probes = 200000
	fpClassic, fpBlocked := 0, 0
	for i := 0; i < probes; i++ {
		if classic.Contains(key(n + i)) {
			fpClassic++
		}
		if blocked.Contains(key(n + i)) {
			fpBlocked++
		}
	}
	gotClassic := float64(fpClassic) / probes
	gotBlocked := float64(fpBlocked) / probes
	boundClassic := TheoreticalFPR(classic.M(), classic.K(), n)
	boundBlocked := TheoreticalBlockedFPR(blocked.M(), blocked.K(), n)
	if boundBlocked < boundClassic {
		t.Fatalf("blocked bound %v below classic bound %v; the blocking penalty must not be negative",
			boundBlocked, boundClassic)
	}
	if gotBlocked > 1.5*boundBlocked+0.002 {
		t.Errorf("blocked FPR %v exceeds its theoretical bound %v", gotBlocked, boundBlocked)
	}
	if gotBlocked < gotClassic {
		// Not impossible at these sample sizes, but the penalty should
		// be visible at 50k items / 200k probes; treat an inversion as
		// an addressing bug (e.g. blocked filter probing fewer bits).
		t.Logf("note: blocked FPR %v measured below classic %v", gotBlocked, gotClassic)
	}
	if gotClassic > 0.03 {
		t.Errorf("classic FPR %v drifted; harness broken", gotClassic)
	}
}

func TestBlockedBatchMatchesSequential(t *testing.T) {
	// The two-phase pipelined loops are a scheduling change, not a
	// semantic one: final filter state must be byte-identical to the
	// scalar path over the same items.
	seq := NewBlocked(1<<16, 7, 3)
	bat := NewBlocked(1<<16, 7, 3)
	items := make([][]byte, 1000) // spans multiple ingestChunk chunks
	h1s := make([]uint64, len(items))
	h2s := make([]uint64, len(items))
	for i := range items {
		items[i] = key(i)
		h1s[i], h2s[i] = hashx.Murmur3_128(items[i], 3)
		seq.Add(items[i])
	}
	bat.AddBatch(items[:500])
	bat.AddHashBatch(h1s[500:], h2s[500:])
	a, _ := seq.MarshalBinary()
	b, _ := bat.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("batched inserts produced different filter state than sequential Adds")
	}
}

func TestBlockedAddHashBatchLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched slice lengths did not panic")
		}
	}()
	NewBlocked(1024, 4, 1).AddHashBatch(make([]uint64, 3), make([]uint64, 2))
}

func TestBlockedWireRoundTrip(t *testing.T) {
	f := NewBlockedWithEstimates(5000, 0.01, 11)
	for i := 0; i < 5000; i++ {
		f.Add(key(i))
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back BlockedFilter
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	round, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, round) {
		t.Fatal("Marshal -> Decode -> Marshal is not byte-identical")
	}
	for i := 0; i < 5000; i++ {
		if !back.Contains(key(i)) {
			t.Fatalf("decoded filter lost key %d", i)
		}
	}
	if back.N() != f.N() || back.K() != f.K() || back.Blocks() != f.Blocks() || back.Seed() != f.Seed() {
		t.Fatal("decoded filter shape differs")
	}
}

func TestBlockedDecodeRejectsCorrupt(t *testing.T) {
	write := func(blocks uint64, k uint32, words int) []byte {
		w := core.NewWriter(core.TagBlockedBloom, 1)
		w.U64(blocks)
		w.U32(k)
		w.U64(1) // seed
		w.U64(0) // n
		w.U64Slice(make([]uint64, words))
		return w.Bytes()
	}
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"zero blocks", write(0, 4, 0)},
		{"k zero", write(2, 0, 16)},
		{"k over 64", write(2, 65, 16)},
		{"short words", write(2, 4, 15)},
		{"long words", write(2, 4, 17)},
	} {
		var f BlockedFilter
		if err := f.UnmarshalBinary(tc.data); !errors.Is(err, core.ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", tc.name, err)
		}
	}
	// The classic filter's envelope must not decode as a blocked one:
	// the layouts address different bits.
	classic, _ := NewWithEstimates(100, 0.01, 1).MarshalBinary()
	var f BlockedFilter
	if err := f.UnmarshalBinary(classic); err == nil {
		t.Fatal("classic bloom envelope decoded as blocked filter")
	}
}

func TestBlockedMergeEqualsUnion(t *testing.T) {
	a := NewBlocked(1<<15, 5, 2)
	b := NewBlocked(1<<15, 5, 2)
	union := NewBlocked(1<<15, 5, 2)
	for i := 0; i < 2000; i++ {
		a.Add(key(i))
		union.Add(key(i))
	}
	for i := 2000; i < 4000; i++ {
		b.Add(key(i))
		union.Add(key(i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	am, _ := a.MarshalBinary()
	um, _ := union.MarshalBinary()
	if !bytes.Equal(am, um) {
		t.Fatal("merge state differs from single-stream union")
	}
}

func TestBlockedMergeIncompatible(t *testing.T) {
	base := NewBlocked(1<<15, 5, 2)
	for _, other := range []*BlockedFilter{
		NewBlocked(1<<16, 5, 2), // different blocks
		NewBlocked(1<<15, 4, 2), // different k
		NewBlocked(1<<15, 5, 3), // different seed
	} {
		if err := base.Merge(other); !errors.Is(err, core.ErrIncompatible) {
			t.Errorf("merge of mismatched shape: err = %v, want ErrIncompatible", err)
		}
	}
}

func TestBlockedFromWordsValidates(t *testing.T) {
	f := NewBlocked(1024, 4, 9)
	for i := 0; i < 100; i++ {
		f.Add(key(i))
	}
	back, err := NewBlockedFromWords(f.Blocks(), f.K(), f.Seed(), f.Words(), f.N())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := f.MarshalBinary()
	b, _ := back.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("FromWords round trip differs")
	}
	if _, err := NewBlockedFromWords(f.Blocks(), f.K(), f.Seed(), f.Words()[:1], f.N()); !errors.Is(err, core.ErrIncompatible) {
		t.Errorf("short words: err = %v, want ErrIncompatible", err)
	}
	if _, err := NewBlockedFromWords(0, f.K(), f.Seed(), nil, 0); !errors.Is(err, core.ErrIncompatible) {
		t.Errorf("zero blocks: err = %v, want ErrIncompatible", err)
	}
}

func TestBlockedAddHashMatchesAdd(t *testing.T) {
	// The pre-hashed contract: Add(item) == AddHash(Murmur3_128(item, seed)).
	a := NewBlocked(1<<14, 6, 5)
	b := NewBlocked(1<<14, 6, 5)
	for i := 0; i < 500; i++ {
		a.Add(key(i))
		h1, h2 := hashx.Murmur3_128(key(i), 5)
		b.AddHash(h1, h2)
		if !b.ContainsHash(h1, h2) {
			t.Fatalf("ContainsHash missed key %d just added", i)
		}
	}
	am, _ := a.MarshalBinary()
	bm, _ := b.MarshalBinary()
	if !bytes.Equal(am, bm) {
		t.Fatal("AddHash state differs from Add state")
	}
}
