// Package bloom implements the Bloom filter (Bloom, 1970) — the paper's
// earliest example of a sketch — and its counting variant.
//
// A Bloom filter represents a set as m bits touched by k hash
// functions. Membership queries have no false negatives and a false
// positive rate of approximately (1 − e^{−kn/m})^k after n insertions;
// experiment E3 verifies this curve against theory. Filters built with
// the same shape and seed are mergeable by bitwise OR, which makes the
// union of distributed set summaries exact (in the Bloom sense).
package bloom

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/core"
	"repro/internal/hashx"
)

// Filter is a classic Bloom filter. The zero value is not usable; use
// New or NewWithEstimates.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    int    // number of hash functions
	seed uint64
	n    uint64 // number of insertions (for telemetry and FPR estimation)
}

// New creates a filter with m bits and k hash functions. Hash values
// are derived by the Kirsch–Mitzenmacher double-hashing trick from one
// 128-bit Murmur3 pass, which preserves the asymptotic false-positive
// rate while hashing each item only once.
func New(m uint64, k int, seed uint64) *Filter {
	if m == 0 {
		panic("bloom: m must be positive")
	}
	if k < 1 {
		panic("bloom: k must be >= 1")
	}
	return &Filter{
		bits: make([]uint64, (m+63)/64),
		m:    m,
		k:    k,
		seed: seed,
	}
}

// NewWithEstimates sizes a filter for n expected items at target false
// positive rate p, using the optimal m = −n ln p / (ln 2)² and
// k = (m/n) ln 2.
func NewWithEstimates(n uint64, p float64, seed uint64) *Filter {
	if n == 0 {
		n = 1
	}
	if !(p > 0 && p < 1) {
		panic("bloom: false positive rate must be in (0,1)")
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	if m == 0 {
		m = 1
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return New(m, k, seed)
}

// Add inserts an item: one 128-bit hash pass, k derived positions.
func (f *Filter) Add(item []byte) {
	h1, h2 := hashx.Murmur3_128(item, f.seed)
	f.AddHash(h1, h2)
}

// AddHash inserts an item from its pre-computed 128-bit hash. The k bit
// positions derive by the Kirsch–Mitzenmacher double-hashing trick,
// g_i = h1 + i·h2 reduced into [0, m) without division. Pipelines that
// feed one hash to several sketches use this to skip re-hashing.
func (f *Filter) AddHash(h1, h2 uint64) {
	// Force h2 odd so the stride is never zero.
	h2 |= 1
	for i := 0; i < f.k; i++ {
		pos := hashx.FastRange(h1, f.m)
		f.bits[pos>>6] |= 1 << (pos & 63)
		h1 += h2
	}
	f.n++
}

// AddString inserts a string item without copying or allocating.
func (f *Filter) AddString(item string) {
	h1, h2 := hashx.Murmur3_128String(item, f.seed)
	f.AddHash(h1, h2)
}

// ingestChunk is the chunk size of the two-phase batch loops: hash a
// chunk, then update from it. 256 pairs keep the staging arrays on the
// stack (~4 KB) while giving the memory system a long run of
// independent accesses to overlap; the same figure is used by every
// pipelined batch path in the module.
const ingestChunk = 256

// AddBatch inserts many items with the two-phase pipelined loop: each
// fixed-size chunk is fully hashed first (pure ALU work), then folded
// into the bit array (pure memory work), so consecutive cache misses
// overlap instead of each item's miss serializing behind its hash.
// State after AddBatch is byte-identical to calling Add on each item
// in order.
func (f *Filter) AddBatch(items [][]byte) {
	var h1s, h2s [ingestChunk]uint64
	for len(items) > 0 {
		c := len(items)
		if c > ingestChunk {
			c = ingestChunk
		}
		for i, item := range items[:c] {
			h1s[i], h2s[i] = hashx.Murmur3_128(item, f.seed)
		}
		f.AddHashBatch(h1s[:c], h2s[:c])
		items = items[c:]
	}
}

// AddHashBatch folds many pre-hashed items in. State is identical to
// calling AddHash on each (h1,h2) pair in order; both slices must have
// equal length. Bit-set operations are commutative, so the loop is
// free to let the k probes of consecutive items overlap in the memory
// system.
func (f *Filter) AddHashBatch(h1s, h2s []uint64) {
	if len(h1s) != len(h2s) {
		panic("bloom: AddHashBatch slice lengths differ")
	}
	for i, h1 := range h1s {
		f.AddHash(h1, h2s[i])
	}
}

// Contains reports whether the item may be in the set. False positives
// occur at the configured rate; false negatives never occur.
func (f *Filter) Contains(item []byte) bool {
	h1, h2 := hashx.Murmur3_128(item, f.seed)
	return f.ContainsHash(h1, h2)
}

// ContainsHash answers a membership query from a pre-computed 128-bit
// hash, probing the same k positions AddHash sets.
func (f *Filter) ContainsHash(h1, h2 uint64) bool {
	h2 |= 1
	for i := 0; i < f.k; i++ {
		pos := hashx.FastRange(h1, f.m)
		if f.bits[pos>>6]&(1<<(pos&63)) == 0 {
			return false
		}
		h1 += h2
	}
	return true
}

// ContainsString reports whether the string item may be in the set,
// without copying or allocating.
func (f *Filter) ContainsString(item string) bool {
	h1, h2 := hashx.Murmur3_128String(item, f.seed)
	return f.ContainsHash(h1, h2)
}

// Update implements the core.Updater streaming interface.
func (f *Filter) Update(item []byte) { f.Add(item) }

// M returns the number of bits.
func (f *Filter) M() uint64 { return f.m }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.k }

// N returns the number of insertions performed (including duplicates).
func (f *Filter) N() uint64 { return f.n }

// FillRatio returns the fraction of set bits, the quantity that
// determines the realized false positive rate.
func (f *Filter) FillRatio() float64 {
	var ones int
	for _, w := range f.bits {
		ones += popcount(w)
	}
	return float64(ones) / float64(f.m)
}

// EstimatedFPR predicts the current false positive rate from the fill
// ratio: fill^k.
func (f *Filter) EstimatedFPR() float64 {
	return math.Pow(f.FillRatio(), float64(f.k))
}

// TheoreticalFPR returns the textbook rate (1 − e^{−kn/m})^k for n
// distinct insertions.
func TheoreticalFPR(m uint64, k int, n uint64) float64 {
	return math.Pow(1-math.Exp(-float64(k)*float64(n)/float64(m)), float64(k))
}

// EstimatedCardinality inverts the fill ratio to estimate the number of
// distinct items inserted: n ≈ −(m/k) ln(1 − fill). (Swamidass & Baldi.)
func (f *Filter) EstimatedCardinality() float64 {
	fill := f.FillRatio()
	if fill >= 1 {
		return math.Inf(1)
	}
	return -float64(f.m) / float64(f.k) * math.Log(1-fill)
}

// Merge ORs another filter into this one; the result represents the
// union of both sets. Shapes and seeds must match.
func (f *Filter) Merge(other *Filter) error {
	if f.m != other.m || f.k != other.k || f.seed != other.seed {
		return fmt.Errorf("%w: bloom shapes (m=%d,k=%d,seed=%d) vs (m=%d,k=%d,seed=%d)",
			core.ErrIncompatible, f.m, f.k, f.seed, other.m, other.k, other.seed)
	}
	for i, w := range other.bits {
		f.bits[i] |= w
	}
	f.n += other.n
	return nil
}

// Intersect ANDs another filter into this one. The result may overstate
// the true intersection (standard Bloom semantics) but never misses a
// common element. Shapes and seeds must match.
func (f *Filter) Intersect(other *Filter) error {
	if f.m != other.m || f.k != other.k || f.seed != other.seed {
		return fmt.Errorf("%w: bloom intersect shape mismatch", core.ErrIncompatible)
	}
	for i, w := range other.bits {
		f.bits[i] &= w
	}
	return nil
}

// Clone returns a deep copy.
func (f *Filter) Clone() *Filter {
	c := *f
	c.bits = append([]uint64(nil), f.bits...)
	return &c
}

// SizeBytes returns the in-memory size of the bit array, the figure the
// space experiments report.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// MarshalBinary serializes the filter. Wire version 2 marks filters
// whose bit positions are derived by FastRange reduction; version 1
// was written when positions were reduced by modulo, so its payloads
// address different bits and are not decodable (see UnmarshalBinary).
func (f *Filter) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagBloom, 2)
	w.U64(f.m)
	w.U32(uint32(f.k))
	w.U64(f.seed)
	w.U64(f.n)
	w.U64Slice(f.bits)
	return w.Bytes(), nil
}

// UnmarshalBinary restores a filter serialized by MarshalBinary.
// Version-1 payloads are rejected: they were written when bit positions
// were reduced by modulo rather than FastRange, so their set bits do
// not line up with the positions Contains probes today, and decoding
// one would silently break the no-false-negative guarantee. No in-place
// migration exists (the original items are gone); v1 filters must be
// rebuilt from their source data.
func (f *Filter) UnmarshalBinary(data []byte) error {
	r, version, err := core.NewReaderVersioned(data, core.TagBloom, 2)
	if err != nil {
		return err
	}
	if version < 2 {
		return fmt.Errorf("%w: bloom wire version 1 used modulo bit addressing; decoding it under FastRange addressing would introduce false negatives — rebuild the filter", core.ErrIncompatible)
	}
	m := r.U64()
	k := int(r.U32())
	seed := r.U64()
	n := r.U64()
	bits := r.U64Slice()
	if err := r.Done(); err != nil {
		return err
	}
	// k is bounded because every Add/Contains does k hash probes: a
	// corrupt multi-billion k would turn the first post-decode operation
	// into a minutes-long spin (fuzz-found). Real filters use k ≤ ~30.
	if m == 0 || k < 1 || k > 256 || uint64(len(bits)) != (m+63)/64 {
		return fmt.Errorf("%w: inconsistent bloom dimensions", core.ErrCorrupt)
	}
	f.m, f.k, f.seed, f.n, f.bits = m, k, seed, n, bits
	return nil
}

func popcount(x uint64) int { return bits.OnesCount64(x) }
