package bloom

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/hashx"
)

func key(i int) []byte { return hashx.Uint64Bytes(uint64(i)) }

func TestNoFalseNegatives(t *testing.T) {
	f := NewWithEstimates(10000, 0.01, 1)
	for i := 0; i < 10000; i++ {
		f.Add(key(i))
	}
	for i := 0; i < 10000; i++ {
		if !f.Contains(key(i)) {
			t.Fatalf("false negative for inserted key %d", i)
		}
	}
}

func TestFalsePositiveRateNearTheory(t *testing.T) {
	const n = 20000
	for _, target := range []float64{0.05, 0.01} {
		f := NewWithEstimates(n, target, 7)
		for i := 0; i < n; i++ {
			f.Add(key(i))
		}
		fp := 0
		const probes = 100000
		for i := 0; i < probes; i++ {
			if f.Contains(key(n + i)) {
				fp++
			}
		}
		got := float64(fp) / probes
		if got > 2.5*target {
			t.Errorf("target FPR %v: measured %v too high", target, got)
		}
		theory := TheoreticalFPR(f.M(), f.K(), n)
		if math.Abs(got-theory) > 3*theory+0.005 {
			t.Errorf("measured FPR %v far from theory %v", got, theory)
		}
	}
}

func TestEstimatedFPRTracksTheory(t *testing.T) {
	f := New(1<<16, 4, 3)
	for i := 0; i < 8000; i++ {
		f.Add(key(i))
	}
	est := f.EstimatedFPR()
	theory := TheoreticalFPR(f.M(), f.K(), 8000)
	if math.Abs(est-theory)/theory > 0.25 {
		t.Errorf("EstimatedFPR %v vs theory %v", est, theory)
	}
}

func TestEstimatedCardinality(t *testing.T) {
	f := New(1<<18, 5, 4)
	const n = 20000
	for i := 0; i < n; i++ {
		f.Add(key(i))
		f.Add(key(i)) // duplicates must not inflate cardinality
	}
	est := f.EstimatedCardinality()
	if math.Abs(est-n)/n > 0.05 {
		t.Errorf("cardinality estimate %v, want ~%d", est, n)
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	a := New(1<<14, 4, 9)
	b := New(1<<14, 4, 9)
	whole := New(1<<14, 4, 9)
	for i := 0; i < 3000; i++ {
		a.Add(key(i))
		whole.Add(key(i))
	}
	for i := 3000; i < 6000; i++ {
		b.Add(key(i))
		whole.Add(key(i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := range a.bits {
		if a.bits[i] != whole.bits[i] {
			t.Fatal("merged bits differ from single-stream filter")
		}
	}
	if a.N() != whole.N() {
		t.Errorf("merged N %d, want %d", a.N(), whole.N())
	}
}

func TestMergeIncompatible(t *testing.T) {
	a := New(128, 3, 1)
	for _, b := range []*Filter{New(256, 3, 1), New(128, 4, 1), New(128, 3, 2)} {
		if err := a.Merge(b); !errors.Is(err, core.ErrIncompatible) {
			t.Errorf("merge of mismatched filter did not fail: %v", err)
		}
	}
}

func TestIntersectNeverMissesCommon(t *testing.T) {
	a := New(1<<14, 4, 5)
	b := New(1<<14, 4, 5)
	for i := 0; i < 2000; i++ {
		a.Add(key(i))
	}
	for i := 1000; i < 3000; i++ {
		b.Add(key(i))
	}
	if err := a.Intersect(b); err != nil {
		t.Fatal(err)
	}
	for i := 1000; i < 2000; i++ {
		if !a.Contains(key(i)) {
			t.Fatalf("intersection lost common key %d", i)
		}
	}
	if err := a.Intersect(New(64, 4, 5)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("intersect with mismatched shape must fail")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	f := NewWithEstimates(5000, 0.02, 11)
	for i := 0; i < 5000; i++ {
		f.Add(key(i))
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Filter
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if !g.Contains(key(i)) {
			t.Fatal("round-tripped filter lost a key")
		}
	}
	if g.N() != f.N() || g.M() != f.M() || g.K() != f.K() {
		t.Error("metadata lost in round trip")
	}
	if err := g.UnmarshalBinary(data[:8]); !errors.Is(err, core.ErrCorrupt) {
		t.Error("truncated data accepted")
	}
}

func TestSerializationPropertyRoundTrip(t *testing.T) {
	f := func(keys [][]byte) bool {
		fl := New(4096, 3, 2)
		for _, k := range keys {
			fl.Add(k)
		}
		data, err := fl.MarshalBinary()
		if err != nil {
			return false
		}
		var g Filter
		if err := g.UnmarshalBinary(data); err != nil {
			return false
		}
		for _, k := range keys {
			if !g.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeCommutative(t *testing.T) {
	build := func(lo, hi int) *Filter {
		f := New(2048, 3, 13)
		for i := lo; i < hi; i++ {
			f.Add(key(i))
		}
		return f
	}
	ab := build(0, 100)
	if err := ab.Merge(build(100, 200)); err != nil {
		t.Fatal(err)
	}
	ba := build(100, 200)
	if err := ba.Merge(build(0, 100)); err != nil {
		t.Fatal(err)
	}
	for i := range ab.bits {
		if ab.bits[i] != ba.bits[i] {
			t.Fatal("merge is not commutative")
		}
	}
}

func TestNewPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero m":  func() { New(0, 3, 1) },
		"zero k":  func() { New(64, 0, 1) },
		"bad fpr": func() { NewWithEstimates(10, 1.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestStringHelpers(t *testing.T) {
	f := New(1024, 3, 1)
	f.AddString("hello")
	if !f.ContainsString("hello") {
		t.Error("string item lost")
	}
	f.Update([]byte("via-update"))
	if !f.Contains([]byte("via-update")) {
		t.Error("Update did not insert")
	}
}

func TestCloneIndependent(t *testing.T) {
	f := New(512, 3, 1)
	f.Add(key(1))
	g := f.Clone()
	g.Add(key(2))
	if f.Contains(key(2)) {
		t.Error("clone shares storage with original")
	}
	if !g.Contains(key(1)) {
		t.Error("clone missing original key")
	}
}

func TestCountingAddRemove(t *testing.T) {
	f := NewCounting(1<<12, 4, 21)
	for i := 0; i < 500; i++ {
		f.Add(key(i))
	}
	for i := 0; i < 500; i++ {
		if !f.Contains(key(i)) {
			t.Fatal("counting filter false negative")
		}
	}
	for i := 0; i < 250; i++ {
		f.Remove(key(i))
	}
	for i := 250; i < 500; i++ {
		if !f.Contains(key(i)) {
			t.Fatal("removal corrupted remaining keys")
		}
	}
	removedStillPresent := 0
	for i := 0; i < 250; i++ {
		if f.Contains(key(i)) {
			removedStillPresent++
		}
	}
	if removedStillPresent > 25 {
		t.Errorf("%d/250 removed keys still appear present", removedStillPresent)
	}
}

func TestCountingMerge(t *testing.T) {
	a := NewCounting(1<<10, 3, 2)
	b := NewCounting(1<<10, 3, 2)
	a.Add(key(1))
	b.Add(key(2))
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !a.Contains(key(1)) || !a.Contains(key(2)) {
		t.Error("merge lost keys")
	}
	if err := a.Merge(NewCounting(64, 3, 2)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("incompatible merge accepted")
	}
}

func TestCountingSaturation(t *testing.T) {
	f := NewCounting(8, 1, 3)
	item := []byte("hot")
	for i := 0; i < 70000; i++ {
		f.Add(item)
	}
	if !f.Contains(item) {
		t.Fatal("saturated counter lost item")
	}
	// Saturated counters must not decrement (no false negatives).
	for i := 0; i < 70000; i++ {
		f.Remove(item)
	}
	if !f.Contains(item) {
		t.Error("saturated counter decremented — false negatives possible")
	}
}

func TestCountingSerialization(t *testing.T) {
	f := NewCounting(100, 3, 8) // non-multiple-of-4 length exercises packing tail
	for i := 0; i < 50; i++ {
		f.Add(key(i))
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g CountingFilter
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if !g.Contains(key(i)) {
			t.Fatal("round trip lost key")
		}
	}
	if g.N() != f.N() {
		t.Error("N lost in round trip")
	}
}

func TestSizeBytes(t *testing.T) {
	f := New(1024, 3, 1)
	if f.SizeBytes() != 128 {
		t.Errorf("SizeBytes = %d, want 128", f.SizeBytes())
	}
	cf := NewCounting(1024, 3, 1)
	if cf.SizeBytes() != 2048 {
		t.Errorf("counting SizeBytes = %d, want 2048", cf.SizeBytes())
	}
}

func BenchmarkAdd(b *testing.B) {
	f := NewWithEstimates(uint64(b.N)+1, 0.01, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(key(i))
	}
}

func BenchmarkContains(b *testing.B) {
	f := NewWithEstimates(100000, 0.01, 1)
	for i := 0; i < 100000; i++ {
		f.Add(key(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(key(i))
	}
}

func ExampleFilter() {
	f := NewWithEstimates(1000, 0.01, 42)
	f.AddString("alice")
	f.AddString("bob")
	fmt.Println(f.ContainsString("alice"), f.ContainsString("mallory"))
	// Output: true false
}
