package bloom

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hashx"
)

// CountingFilter is a counting Bloom filter: each position holds a
// small counter instead of one bit, so items can also be removed. This
// is the structure network systems (the paper's §3 ISP era) used for
// flow tables where entries expire. Counters are 16-bit and saturate
// rather than overflow; a saturated counter is never decremented, which
// preserves the no-false-negative guarantee at the cost of the counter
// sticking at the ceiling.
type CountingFilter struct {
	counts []uint16
	m      uint64
	k      int
	seed   uint64
	n      uint64
}

const countingMax = ^uint16(0)

// NewCounting creates a counting filter with m counters and k hashes.
func NewCounting(m uint64, k int, seed uint64) *CountingFilter {
	if m == 0 {
		panic("bloom: m must be positive")
	}
	if k < 1 {
		panic("bloom: k must be >= 1")
	}
	return &CountingFilter{counts: make([]uint16, m), m: m, k: k, seed: seed}
}

// Add inserts an item, incrementing its k counters. Positions derive
// from one 128-bit hash pass exactly as in Filter.AddHash.
func (f *CountingFilter) Add(item []byte) {
	h1, h2 := hashx.Murmur3_128(item, f.seed)
	h2 |= 1
	for i := 0; i < f.k; i++ {
		pos := hashx.FastRange(h1, f.m)
		if f.counts[pos] < countingMax {
			f.counts[pos]++
		}
		h1 += h2
	}
	f.n++
}

// Remove deletes one occurrence of an item. Removing an item that was
// never added corrupts the filter (standard counting-Bloom caveat), so
// callers must pair removals with prior insertions.
func (f *CountingFilter) Remove(item []byte) {
	h1, h2 := hashx.Murmur3_128(item, f.seed)
	h2 |= 1
	for i := 0; i < f.k; i++ {
		pos := hashx.FastRange(h1, f.m)
		if f.counts[pos] > 0 && f.counts[pos] < countingMax {
			f.counts[pos]--
		}
		h1 += h2
	}
	if f.n > 0 {
		f.n--
	}
}

// Contains reports whether the item may be present.
func (f *CountingFilter) Contains(item []byte) bool {
	h1, h2 := hashx.Murmur3_128(item, f.seed)
	h2 |= 1
	for i := 0; i < f.k; i++ {
		if f.counts[hashx.FastRange(h1, f.m)] == 0 {
			return false
		}
		h1 += h2
	}
	return true
}

// Update implements core.Updater.
func (f *CountingFilter) Update(item []byte) { f.Add(item) }

// N returns the net number of insertions.
func (f *CountingFilter) N() uint64 { return f.n }

// SizeBytes returns the memory footprint of the counter array.
func (f *CountingFilter) SizeBytes() int { return len(f.counts) * 2 }

// Merge adds another counting filter's counters into this one
// (saturating), representing the multiset union.
func (f *CountingFilter) Merge(other *CountingFilter) error {
	if f.m != other.m || f.k != other.k || f.seed != other.seed {
		return fmt.Errorf("%w: counting bloom shape mismatch", core.ErrIncompatible)
	}
	for i, c := range other.counts {
		s := uint32(f.counts[i]) + uint32(c)
		if s > uint32(countingMax) {
			s = uint32(countingMax)
		}
		f.counts[i] = uint16(s)
	}
	f.n += other.n
	return nil
}

// MarshalBinary serializes the filter. Wire version 2 marks filters
// whose counter positions are derived by FastRange reduction; version 1
// (modulo positions) is not decodable, as with Filter.
func (f *CountingFilter) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagCountingBloom, 2)
	w.U64(f.m)
	w.U32(uint32(f.k))
	w.U64(f.seed)
	w.U64(f.n)
	packed := make([]uint64, (len(f.counts)+3)/4)
	for i, c := range f.counts {
		packed[i/4] |= uint64(c) << ((i % 4) * 16)
	}
	w.U64Slice(packed)
	return w.Bytes(), nil
}

// UnmarshalBinary restores a filter serialized by MarshalBinary.
// Version-1 payloads (modulo counter addressing) are rejected for the
// same reason as Filter's: their counters sit at positions today's
// probes never read, so membership and counts would silently be wrong.
func (f *CountingFilter) UnmarshalBinary(data []byte) error {
	r, version, err := core.NewReaderVersioned(data, core.TagCountingBloom, 2)
	if err != nil {
		return err
	}
	if version < 2 {
		return fmt.Errorf("%w: counting bloom wire version 1 used modulo addressing; rebuild the filter", core.ErrIncompatible)
	}
	m := r.U64()
	k := int(r.U32())
	seed := r.U64()
	n := r.U64()
	packed := r.U64Slice()
	if err := r.Done(); err != nil {
		return err
	}
	if m == 0 || k < 1 || k > 256 || uint64(len(packed)) != (m+3)/4 {
		return fmt.Errorf("%w: inconsistent counting bloom dimensions", core.ErrCorrupt)
	}
	counts := make([]uint16, m)
	for i := range counts {
		counts[i] = uint16(packed[i/4] >> ((i % 4) * 16))
	}
	f.m, f.k, f.seed, f.n, f.counts = m, k, seed, n, counts
	return nil
}
