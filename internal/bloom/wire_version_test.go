package bloom

import (
	"errors"
	"testing"

	"repro/internal/core"
)

// The switch from modulo to FastRange bit addressing changed which bits
// an item maps to, so filters serialized under the old addressing
// (wire version 1) must be rejected outright: decoding one would
// silently violate the no-false-negative guarantee.

func v1BloomEnvelope(tag byte) []byte {
	w := core.NewWriter(tag, 1)
	w.U64(128) // m
	w.U32(3)   // k
	w.U64(7)   // seed
	w.U64(0)   // n
	w.U64Slice(make([]uint64, 2))
	return w.Bytes()
}

func TestBloomRejectsVersion1(t *testing.T) {
	var f Filter
	err := f.UnmarshalBinary(v1BloomEnvelope(core.TagBloom))
	if !errors.Is(err, core.ErrIncompatible) {
		t.Fatalf("version-1 bloom payload: err = %v, want ErrIncompatible", err)
	}
}

func TestCountingBloomRejectsVersion1(t *testing.T) {
	w := core.NewWriter(core.TagCountingBloom, 1)
	w.U64(8) // m
	w.U32(3) // k
	w.U64(7) // seed
	w.U64(0) // n
	w.U64Slice(make([]uint64, 2))
	var f CountingFilter
	err := f.UnmarshalBinary(w.Bytes())
	if !errors.Is(err, core.ErrIncompatible) {
		t.Fatalf("version-1 counting bloom payload: err = %v, want ErrIncompatible", err)
	}
}

func TestBloomWritesVersion2(t *testing.T) {
	f := New(128, 3, 7)
	f.AddString("x")
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, version, err := core.NewReader(data, core.TagBloom); err != nil || version != 2 {
		t.Fatalf("bloom envelope version = %d (err %v), want 2", version, err)
	}
	cf := NewCounting(64, 3, 7)
	cf.Add([]byte("x"))
	cdata, err := cf.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, version, err := core.NewReader(cdata, core.TagCountingBloom); err != nil || version != 2 {
		t.Fatalf("counting bloom envelope version = %d (err %v), want 2", version, err)
	}
}
