package frequency

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
)

func buildSF(t *testing.T, slimW, slimD, fatW, fatD int, n int) (*SFSketch, map[uint64]uint64) {
	t.Helper()
	s := NewSFSketch(slimW, slimD, fatW, fatD, 7)
	stream, truth := zipfStream(n, 20000, 1.1, 7)
	for _, v := range stream {
		s.AddUint64(v, 1)
	}
	return s, truth
}

func TestSFNeverUndercounts(t *testing.T) {
	s, truth := buildSF(t, 256, 4, 2048, 4, 50000)
	for item, want := range truth {
		if got := s.EstimateUint64(item); got < want {
			t.Fatalf("slim undercount: item %d est %d < true %d", item, got, want)
		}
	}
	// The slim estimate never exceeds what a plain Count-Min of the slim
	// shape would report: every conditional update adds at most `weight`
	// to a counter, so the slim grid is dominated cell-wise by the plain
	// grid over the same stream and hashes.
	plain := NewSFSketch(256, 4, 1, 1, 7)
	plain.fat = nil // slim-only: plain CM semantics over the same slim hashes
	stream, _ := zipfStream(50000, 20000, 1.1, 7)
	for _, v := range stream {
		plain.AddUint64(v, 1)
	}
	for item := range truth {
		if sf, cm := s.EstimateUint64(item), plain.EstimateUint64(item); sf > cm {
			t.Fatalf("item %d: slim estimate %d exceeds plain Count-Min %d", item, sf, cm)
		}
	}
}

func TestSFBeatsPlainCountMinAtSlimSize(t *testing.T) {
	// The headline claim: at equal wire size (the slim shape), the
	// two-stage sketch's average relative error is a small fraction of a
	// plain Count-Min's. This is the in-library version of experiment
	// E33's accuracy-per-byte gate.
	const n = 200000
	s := NewSFSketch(128, 4, 1024, 4, 3)
	cm := NewCountMin(128, 4, 3)
	stream, truth := zipfStream(n, 50000, 1.05, 3)
	for _, v := range stream {
		s.AddUint64(v, 1)
		cm.AddUint64(v, 1)
	}
	var sfErr, cmErr float64
	for item, want := range truth {
		sfErr += float64(s.EstimateUint64(item)-want) / float64(want)
		cmErr += float64(cm.EstimateUint64(item)-want) / float64(want)
	}
	if sfErr*2 >= cmErr {
		t.Fatalf("SF avg rel error %.3f not 2x better than plain CM %.3f at equal slim size",
			sfErr/float64(len(truth)), cmErr/float64(len(truth)))
	}
}

func TestSFBatchMatchesSequential(t *testing.T) {
	seq := NewSFSketch(128, 4, 512, 4, 9)
	bat := NewSFSketch(128, 4, 512, 4, 9)
	stream, _ := zipfStream(40000, 5000, 1.2, 9)
	items := make([][]byte, len(stream))
	for i, v := range stream {
		items[i] = []byte{byte(v), byte(v >> 8), byte(v >> 16)}
	}
	for _, it := range items {
		seq.Add(it, 1)
	}
	bat.AddBatch(items)
	a, _ := seq.MarshalBinary()
	b, _ := bat.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("AddBatch state differs from sequential Add — batch path is not order-faithful")
	}
}

func TestSFMarshalRoundTripByteIdentity(t *testing.T) {
	s, _ := buildSF(t, 64, 3, 512, 3, 20000)

	full, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g SFSketch
	if err := g.UnmarshalBinary(full); err != nil {
		t.Fatal(err)
	}
	if g.SlimOnly() {
		t.Fatal("full envelope decoded as slim-only")
	}
	full2, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, full2) {
		t.Fatal("full envelope: Marshal -> Decode -> Marshal is not byte-identical")
	}

	slim, err := s.MarshalSlim()
	if err != nil {
		t.Fatal(err)
	}
	if len(slim) >= len(full) {
		t.Fatalf("slim envelope (%d bytes) not smaller than full (%d bytes)", len(slim), len(full))
	}
	var sl SFSketch
	if err := sl.UnmarshalBinary(slim); err != nil {
		t.Fatal(err)
	}
	if !sl.SlimOnly() {
		t.Fatal("slim envelope decoded with a fat stage")
	}
	slim2, err := sl.MarshalBinary() // slim-only re-marshals slim
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(slim, slim2) {
		t.Fatal("slim envelope: Marshal -> Decode -> Marshal is not byte-identical")
	}
	if sl.N() != s.N() || sl.Seed() != s.Seed() || sl.FatWidth() != s.FatWidth() {
		t.Fatal("slim envelope dropped header fields")
	}
	// Slim-only answers the same point queries as the full instance —
	// the whole point of shipping slim.
	for _, item := range []uint64{1, 2, 3, 100, 9999} {
		if a, b := s.EstimateUint64(item), sl.EstimateUint64(item); a != b {
			t.Fatalf("item %d: full slim-stage estimate %d != decoded slim estimate %d", item, a, b)
		}
	}
}

func TestSFMergeFullAndSlim(t *testing.T) {
	mk := func(seed uint64) (*SFSketch, []uint64) {
		s := NewSFSketch(128, 4, 1024, 4, 5)
		stream, _ := zipfStream(30000, 8000, 1.2, seed)
		for _, v := range stream {
			s.AddUint64(v, 1)
		}
		return s, stream
	}
	a, sa := mk(11)
	b, sb := mk(12)

	// Full+full: merged never undercounts the combined stream.
	truth := map[uint64]uint64{}
	for _, v := range sa {
		truth[v]++
	}
	for _, v := range sb {
		truth[v]++
	}
	m := a.Clone()
	if err := m.Merge(b); err != nil {
		t.Fatal(err)
	}
	if m.N() != a.N()+b.N() {
		t.Fatalf("merged N = %d, want %d", m.N(), a.N()+b.N())
	}
	for item, want := range truth {
		if got := m.EstimateUint64(item); got < want {
			t.Fatalf("full merge undercount: item %d est %d < true %d", item, got, want)
		}
	}

	// Slim+slim (the coordinator's slim-gather path): still never an
	// undercount of the combined stream.
	slimA, _ := a.MarshalSlim()
	slimB, _ := b.MarshalSlim()
	var da, db SFSketch
	if err := da.UnmarshalBinary(slimA); err != nil {
		t.Fatal(err)
	}
	if err := db.UnmarshalBinary(slimB); err != nil {
		t.Fatal(err)
	}
	if err := da.Merge(&db); err != nil {
		t.Fatal(err)
	}
	for item, want := range truth {
		if got := da.EstimateUint64(item); got < want {
			t.Fatalf("slim merge undercount: item %d est %d < true %d", item, got, want)
		}
	}

	// Full+slim mixing breaks the fat-caps-slim invariant and must be
	// rejected, as must shape and seed mismatches.
	if err := a.Merge(&db); !errors.Is(err, core.ErrIncompatible) {
		t.Fatalf("full+slim merge: got %v, want ErrIncompatible", err)
	}
	other := NewSFSketch(128, 4, 1024, 4, 6)
	if err := a.Merge(other); !errors.Is(err, core.ErrIncompatible) {
		t.Fatalf("seed-mismatched merge: got %v, want ErrIncompatible", err)
	}
}

func TestSFSlimOnlyAcceptsUpdates(t *testing.T) {
	s, _ := buildSF(t, 128, 4, 512, 4, 10000)
	slim, _ := s.MarshalSlim()
	var sl SFSketch
	if err := sl.UnmarshalBinary(slim); err != nil {
		t.Fatal(err)
	}
	before := sl.EstimateUint64(424242)
	for i := 0; i < 100; i++ {
		sl.AddUint64(424242, 1)
	}
	if got := sl.EstimateUint64(424242); got < before+100 {
		t.Fatalf("slim-only update lost weight: est %d, want >= %d", got, before+100)
	}
}

func TestSFDecodeRejectsCorrupt(t *testing.T) {
	s, _ := buildSF(t, 32, 2, 64, 2, 1000)
	full, _ := s.MarshalBinary()
	for name, mut := range map[string]func([]byte) []byte{
		"mode byte 2": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[6] = 2 // magic(4) + tag(1) + version(1), then mode
			return c
		},
		"truncated": func(b []byte) []byte { return b[:len(b)-3] },
		"trailing":  func(b []byte) []byte { return append(append([]byte(nil), b...), 0) },
		"zero dims": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[7], c[8], c[9], c[10] = 0, 0, 0, 0 // slimWidth u32
			return c
		},
	} {
		var g SFSketch
		if err := g.UnmarshalBinary(mut(full)); err == nil {
			t.Fatalf("%s: corrupt envelope decoded without error", name)
		}
	}
}
