package frequency

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/randx"
)

// zipfStream draws n items from Zipf(alpha) over a domain and returns
// the stream plus exact counts.
func zipfStream(n, domain int, alpha float64, seed uint64) ([]uint64, map[uint64]uint64) {
	rng := randx.New(seed)
	z := randx.NewZipf(rng, alpha, domain)
	stream := make([]uint64, n)
	truth := make(map[uint64]uint64, domain)
	for i := range stream {
		v := z.Next()
		stream[i] = v
		truth[v]++
	}
	return stream, truth
}

func TestCountMinNeverUndercounts(t *testing.T) {
	cm := NewCountMin(256, 4, 1)
	stream, truth := zipfStream(50000, 10000, 1.2, 1)
	for _, v := range stream {
		cm.AddUint64(v, 1)
	}
	for item, want := range truth {
		if got := cm.EstimateUint64(item); got < want {
			t.Fatalf("undercount: item %d est %d < true %d", item, got, want)
		}
	}
}

func TestCountMinErrorBound(t *testing.T) {
	const n = 100000
	cm := NewCountMin(2000, 5, 2) // eps = e/2000
	stream, truth := zipfStream(n, 50000, 1.1, 2)
	for _, v := range stream {
		cm.AddUint64(v, 1)
	}
	bound := uint64(cm.ErrorBound())
	violations := 0
	for item, want := range truth {
		if cm.EstimateUint64(item) > want+bound {
			violations++
		}
	}
	// delta = e^-5 < 1%; allow a small number of violations.
	if violations > len(truth)/50 {
		t.Errorf("%d/%d estimates exceeded the (eps,delta) bound", violations, len(truth))
	}
}

func TestCountMinWeightedUpdates(t *testing.T) {
	cm := NewCountMin(512, 4, 3)
	cm.AddString("a")
	cm.AddUint64(7, 41)
	if got := cm.EstimateUint64(7); got < 41 {
		t.Errorf("weighted estimate %d < 41", got)
	}
	if cm.N() != 42 {
		t.Errorf("N = %d, want 42", cm.N())
	}
}

func TestCountMinConservativeReducesError(t *testing.T) {
	const n = 200000
	stream, truth := zipfStream(n, 100000, 1.0, 4)
	plain := NewCountMin(512, 4, 5)
	cons := NewCountMin(512, 4, 5)
	cons.SetConservative(true)
	for _, v := range stream {
		plain.AddUint64(v, 1)
		cons.AddUint64(v, 1)
	}
	var errPlain, errCons float64
	for item, want := range truth {
		errPlain += float64(plain.EstimateUint64(item) - want)
		got := cons.EstimateUint64(item)
		if got < want {
			t.Fatalf("conservative update undercounted item %d: %d < %d", item, got, want)
		}
		errCons += float64(got - want)
	}
	if errCons >= errPlain {
		t.Errorf("conservative update did not reduce total error: %.0f vs %.0f", errCons, errPlain)
	}
}

func TestCountMinConservativeRules(t *testing.T) {
	c := NewCountMin(64, 3, 1)
	c.AddString("x")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetConservative after updates must panic")
			}
		}()
		c.SetConservative(true)
	}()
	a := NewCountMin(64, 3, 1)
	a.SetConservative(true)
	b := NewCountMin(64, 3, 1)
	if err := a.Merge(b); !errors.Is(err, core.ErrIncompatible) {
		t.Error("merging conservative sketch must fail")
	}
}

func TestCountMinMergeEqualsSingleStream(t *testing.T) {
	stream, _ := zipfStream(60000, 5000, 1.3, 6)
	a := NewCountMin(256, 4, 7)
	b := NewCountMin(256, 4, 7)
	whole := NewCountMin(256, 4, 7)
	for i, v := range stream {
		if i%2 == 0 {
			a.AddUint64(v, 1)
		} else {
			b.AddUint64(v, 1)
		}
		whole.AddUint64(v, 1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for item := uint64(1); item <= 100; item++ {
		if a.EstimateUint64(item) != whole.EstimateUint64(item) {
			t.Fatalf("merge not lossless for item %d", item)
		}
	}
	if err := a.Merge(NewCountMin(128, 4, 7)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("merge across widths must fail")
	}
}

func TestCountMinInnerProduct(t *testing.T) {
	// Join-size estimation: inner product of two frequency vectors.
	a := NewCountMin(4096, 5, 8)
	b := NewCountMin(4096, 5, 8)
	var want uint64
	// f has items 0..99 with count i+1; g has the same items with count 2.
	for i := uint64(0); i < 100; i++ {
		a.AddUint64(i, i+1)
		b.AddUint64(i, 2)
		want += (i + 1) * 2
	}
	got, err := a.InnerProduct(b)
	if err != nil {
		t.Fatal(err)
	}
	if got < want || float64(got-want) > 0.2*float64(want) {
		t.Errorf("inner product %d, want >= %d within 20%%", got, want)
	}
	if _, err := a.InnerProduct(NewCountMin(64, 5, 8)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("inner product across shapes must fail")
	}
}

func TestCountMinSpecConstructor(t *testing.T) {
	cm, err := NewCountMinWithSpec(core.Spec{Epsilon: 0.001, Delta: 0.01}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Width() != int(math.Ceil(math.E/0.001)) || cm.Depth() != 5 {
		t.Errorf("shape %dx%d", cm.Width(), cm.Depth())
	}
	if _, err := NewCountMinWithSpec(core.Spec{Epsilon: 2, Delta: 0.5}, 1); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestCountMinSerialization(t *testing.T) {
	cm := NewCountMin(128, 4, 9)
	stream, _ := zipfStream(10000, 1000, 1.5, 9)
	for _, v := range stream {
		cm.AddUint64(v, 1)
	}
	data, _ := cm.MarshalBinary()
	var g CountMin
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for item := uint64(1); item <= 50; item++ {
		if g.EstimateUint64(item) != cm.EstimateUint64(item) {
			t.Fatal("round trip changed estimates")
		}
	}
	if g.N() != cm.N() {
		t.Error("round trip changed N")
	}
}

func TestCountSketchUnbiasedAndL2Bound(t *testing.T) {
	const n = 100000
	stream, truth := zipfStream(n, 50000, 1.5, 10)
	cs := NewCountSketch(1024, 5, 11)
	for _, v := range stream {
		cs.AddUint64(v, 1)
	}
	// Error should be within a few multiples of ||f||_2 / sqrt(w).
	var f2 float64
	for _, c := range truth {
		f2 += float64(c) * float64(c)
	}
	scale := math.Sqrt(f2 / 1024)
	bad := 0
	probes := 0
	for item, want := range truth {
		probes++
		if probes > 5000 {
			break
		}
		got := cs.EstimateUint64(item)
		if math.Abs(float64(got)-float64(want)) > 6*scale {
			bad++
		}
	}
	if bad > probes/20 {
		t.Errorf("%d/%d estimates outside 6x L2 bound", bad, probes)
	}
}

func TestCountSketchCountMinCrossover(t *testing.T) {
	// E4's crossover at equal space (width w): Count-Min's additive
	// error scales with ‖f‖₁/w, Count Sketch's with ‖f‖₂/√w. When the
	// stream is lightly skewed ‖f‖₂ ≪ ‖f‖₁ and Count Sketch wins; when
	// a few items dominate, ‖f‖₂ ≈ ‖f‖₁ and Count-Min's faster 1/w
	// decay wins. Verify both regimes.
	const n = 200000
	meanAbsErr := func(alpha float64, seed uint64) (cmErr, csErr float64) {
		stream, truth := zipfStream(n, 100000, alpha, seed)
		cm := NewCountMin(512, 5, 13)
		cs := NewCountSketch(512, 5, 13)
		for _, v := range stream {
			cm.AddUint64(v, 1)
			cs.AddUint64(v, 1)
		}
		count := 0
		for item, want := range truth {
			cmErr += math.Abs(float64(cm.EstimateUint64(item)) - float64(want))
			csErr += math.Abs(float64(cs.EstimateUint64(item)) - float64(want))
			count++
		}
		return cmErr / float64(count), csErr / float64(count)
	}
	cmLight, csLight := meanAbsErr(0.6, 12)
	if csLight >= cmLight {
		t.Errorf("light skew: count sketch err %.1f not better than count-min %.1f", csLight, cmLight)
	}
	cmHeavy, csHeavy := meanAbsErr(1.8, 12)
	if cmHeavy >= csHeavy {
		t.Errorf("heavy skew: count-min err %.1f not better than count sketch %.1f", cmHeavy, csHeavy)
	}
}

func TestCountSketchTurnstile(t *testing.T) {
	cs := NewCountSketch(256, 5, 14)
	cs.AddUint64(42, 100)
	cs.AddUint64(42, -60)
	got := cs.EstimateUint64(42)
	if got < 30 || got > 50 {
		t.Errorf("turnstile estimate %d, want ~40", got)
	}
}

func TestCountSketchF2(t *testing.T) {
	cs := NewCountSketch(2048, 7, 15)
	var want float64
	for i := uint64(0); i < 1000; i++ {
		w := int64(i%10) + 1
		cs.AddUint64(i, w)
		want += float64(w) * float64(w)
	}
	got := cs.F2Estimate()
	if core.RelErr(got, want) > 0.15 {
		t.Errorf("F2 estimate %.0f, want ~%.0f", got, want)
	}
}

func TestCountSketchMergeAndSerialize(t *testing.T) {
	a := NewCountSketch(128, 3, 16)
	b := NewCountSketch(128, 3, 16)
	whole := NewCountSketch(128, 3, 16)
	for i := uint64(0); i < 1000; i++ {
		if i%2 == 0 {
			a.AddUint64(i, 1)
		} else {
			b.AddUint64(i, 1)
		}
		whole.AddUint64(i, 1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		if a.EstimateUint64(i) != whole.EstimateUint64(i) {
			t.Fatal("merge not lossless")
		}
	}
	data, _ := a.MarshalBinary()
	var g CountSketch
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		if g.EstimateUint64(i) != a.EstimateUint64(i) {
			t.Fatal("round trip changed estimates")
		}
	}
	if err := a.Merge(NewCountSketch(128, 3, 17)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("merge across seeds must fail")
	}
}

func TestCountSketchDepthRoundedOdd(t *testing.T) {
	cs := NewCountSketch(64, 4, 1)
	if cs.Depth()%2 == 0 {
		t.Error("depth should be odd")
	}
}

func TestMisraGriesGuarantee(t *testing.T) {
	const n = 100000
	stream, truth := zipfStream(n, 10000, 1.2, 20)
	mg := NewMisraGries(100)
	for _, v := range stream {
		mg.Add(fmt.Sprint(v), 1)
	}
	bound := mg.ErrorBound()
	for item, want := range truth {
		got := mg.Estimate(fmt.Sprint(item))
		if got > want {
			t.Fatalf("misra-gries overcounted %v: %d > %d", item, got, want)
		}
		if want > bound && got == 0 {
			t.Fatalf("item with count %d > bound %d was lost", want, bound)
		}
		if want-got > bound {
			t.Fatalf("undercount %d exceeds bound %d", want-got, bound)
		}
	}
}

func TestMisraGriesHeavyHittersNoFalseNegatives(t *testing.T) {
	const n = 50000
	stream, truth := zipfStream(n, 5000, 1.5, 21)
	mg := NewMisraGries(200)
	for _, v := range stream {
		mg.Add(fmt.Sprint(v), 1)
	}
	const phi = 0.01
	hh := mg.HeavyHitters(phi)
	got := make(map[string]bool, len(hh))
	for _, e := range hh {
		got[e.Item] = true
	}
	for item, c := range truth {
		if float64(c) >= phi*float64(n) && !got[fmt.Sprint(item)] {
			t.Errorf("true heavy hitter %d (count %d) missing", item, c)
		}
	}
}

func TestMisraGriesMergePreservesGuarantee(t *testing.T) {
	streamA, truthA := zipfStream(30000, 3000, 1.3, 22)
	streamB, truthB := zipfStream(30000, 3000, 1.3, 23)
	a := NewMisraGries(150)
	b := NewMisraGries(150)
	for _, v := range streamA {
		a.Add(fmt.Sprint(v), 1)
	}
	for _, v := range streamB {
		b.Add(fmt.Sprint(v), 1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 60000 {
		t.Errorf("merged N = %d", a.N())
	}
	bound := a.N() / uint64(a.K()+1)
	for item, cA := range truthA {
		want := cA + truthB[item]
		got := a.Estimate(fmt.Sprint(item))
		if got > want {
			t.Fatalf("merged overcount for %d", item)
		}
		if want-got > bound {
			t.Fatalf("merged undercount %d exceeds bound %d", want-got, bound)
		}
	}
	if err := a.Merge(NewMisraGries(10)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("merge across k must fail")
	}
}

func TestMisraGriesSerialization(t *testing.T) {
	mg := NewMisraGries(50)
	stream, _ := zipfStream(10000, 500, 1.4, 24)
	for _, v := range stream {
		mg.Add(fmt.Sprint(v), 1)
	}
	data, _ := mg.MarshalBinary()
	var g MisraGries
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for _, e := range mg.Entries() {
		if g.Estimate(e.Item) != e.Count {
			t.Fatal("round trip changed counters")
		}
	}
}

func TestSpaceSavingGuarantee(t *testing.T) {
	const n = 100000
	stream, truth := zipfStream(n, 10000, 1.2, 25)
	ss := NewSpaceSaving(100)
	for _, v := range stream {
		ss.Add(fmt.Sprint(v), 1)
	}
	bound := ss.ErrorBound()
	for item, want := range truth {
		got := ss.Estimate(fmt.Sprint(item))
		if got > 0 && got < want {
			t.Fatalf("space-saving undercounted tracked item %v: %d < %d", item, got, want)
		}
		if got > want+bound {
			t.Fatalf("overcount %d exceeds bound %d", got-want, bound)
		}
		if want > bound && got == 0 {
			t.Fatalf("item with count %d > N/k was lost", want)
		}
	}
}

func TestSpaceSavingMatchesMisraGriesRecall(t *testing.T) {
	// E5: the two deterministic summaries should find the same heavy
	// hitters at matched counter budgets.
	const n = 80000
	stream, truth := zipfStream(n, 8000, 1.4, 26)
	ss := NewSpaceSaving(128)
	mg := NewMisraGries(128)
	for _, v := range stream {
		s := fmt.Sprint(v)
		ss.Add(s, 1)
		mg.Add(s, 1)
	}
	const phi = 0.005
	wantHH := map[string]bool{}
	for item, c := range truth {
		if float64(c) >= phi*float64(n) {
			wantHH[fmt.Sprint(item)] = true
		}
	}
	ssGot := map[string]bool{}
	for _, e := range ss.HeavyHitters(phi) {
		ssGot[e.Item] = true
	}
	mgGot := map[string]bool{}
	for _, e := range mg.HeavyHitters(phi) {
		mgGot[e.Item] = true
	}
	for item := range wantHH {
		if !ssGot[item] {
			t.Errorf("space-saving missed heavy hitter %s", item)
		}
		if !mgGot[item] {
			t.Errorf("misra-gries missed heavy hitter %s", item)
		}
	}
}

func TestSpaceSavingGuaranteedCount(t *testing.T) {
	ss := NewSpaceSaving(4)
	for i := 0; i < 100; i++ {
		ss.Add("hot", 1)
	}
	for i := 0; i < 40; i++ {
		ss.Add(fmt.Sprint(i%8), 1) // churn through evictions
	}
	if g := ss.GuaranteedCount("hot"); g > 100 {
		t.Errorf("guaranteed count %d exceeds truth", g)
	}
	if ss.Estimate("hot") < 100 {
		t.Error("tracked hot item undercounted")
	}
}

func TestSpaceSavingMerge(t *testing.T) {
	a := NewSpaceSaving(64)
	b := NewSpaceSaving(64)
	streamA, truthA := zipfStream(20000, 2000, 1.5, 27)
	streamB, truthB := zipfStream(20000, 2000, 1.5, 28)
	for _, v := range streamA {
		a.Add(fmt.Sprint(v), 1)
	}
	for _, v := range streamB {
		b.Add(fmt.Sprint(v), 1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 40000 {
		t.Errorf("merged N = %d", a.N())
	}
	// The largest combined item must be present with a valid upper bound.
	var maxItem string
	var maxCount uint64
	for item, c := range truthA {
		total := c + truthB[item]
		if total > maxCount {
			maxCount, maxItem = total, fmt.Sprint(item)
		}
	}
	got := a.Estimate(maxItem)
	if got == 0 {
		t.Fatal("merged summary lost the top item")
	}
	if got < maxCount {
		t.Errorf("merged estimate %d below true %d (upper-bound property lost)", got, maxCount)
	}
	if err := a.Merge(NewSpaceSaving(32)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("merge across k must fail")
	}
}

func TestSpaceSavingSerialization(t *testing.T) {
	ss := NewSpaceSaving(32)
	stream, _ := zipfStream(5000, 300, 1.3, 29)
	for _, v := range stream {
		ss.Add(fmt.Sprint(v), 1)
	}
	data, _ := ss.MarshalBinary()
	var g SpaceSaving
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for _, e := range ss.Entries() {
		if g.Estimate(e.Item) != e.Count {
			t.Fatal("round trip changed counters")
		}
	}
	if g.N() != ss.N() {
		t.Error("round trip changed N")
	}
}

func TestMajorityFindsMajority(t *testing.T) {
	m := NewMajority()
	// 60% a, 40% split.
	for i := 0; i < 100; i++ {
		if i%5 < 3 {
			m.Add("a")
		} else {
			m.Add(fmt.Sprint(i))
		}
	}
	if c, ok := m.Candidate(); !ok || c != "a" {
		t.Errorf("candidate = %q, want a", c)
	}
	if m.N() != 100 {
		t.Errorf("N = %d", m.N())
	}
	empty := NewMajority()
	if _, ok := empty.Candidate(); ok {
		t.Error("empty stream should report no candidate")
	}
}

func TestDyadicRangeCount(t *testing.T) {
	d := NewDyadicCountMin(16, 2048, 4, 30)
	// Uniform values over [0, 1000).
	rng := randx.New(31)
	truth := make([]uint64, 1000)
	const n = 50000
	for i := 0; i < n; i++ {
		v := uint64(rng.Intn(1000))
		d.Add(v, 1)
		truth[v]++
	}
	var want uint64
	for v := 100; v <= 300; v++ {
		want += truth[v]
	}
	got := d.RangeCount(100, 300)
	if got < want {
		t.Errorf("range count %d below true %d (count-min never undercounts)", got, want)
	}
	if float64(got-want) > 0.1*float64(n) {
		t.Errorf("range overcount %d too large", got-want)
	}
}

func TestDyadicQuantile(t *testing.T) {
	d := NewDyadicCountMin(20, 4096, 5, 32)
	const n = 100000
	rng := randx.New(33)
	for i := 0; i < n; i++ {
		d.Add(uint64(rng.Intn(1<<20)), 1)
	}
	med := d.Quantile(0.5)
	// True median of uniform over 2^20 is ~2^19.
	if core.RelErr(float64(med), float64(1<<19)) > 0.1 {
		t.Errorf("median %d, want ~%d", med, 1<<19)
	}
	if q0 := d.Quantile(0); q0 > d.Quantile(1) {
		t.Error("quantiles must be monotone")
	}
}

func TestDyadicMergeAndBounds(t *testing.T) {
	a := NewDyadicCountMin(10, 512, 4, 34)
	b := NewDyadicCountMin(10, 512, 4, 34)
	for i := uint64(0); i < 512; i++ {
		a.Add(i, 1)
		b.Add(i+512, 1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 1024 {
		t.Errorf("merged N = %d", a.N())
	}
	if got := a.RangeCount(0, 1023); got < 1024 {
		t.Errorf("full-range count %d < 1024", got)
	}
	if err := a.Merge(NewDyadicCountMin(11, 512, 4, 34)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("merge across levels must fail")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-domain Add must panic")
			}
		}()
		a.Add(1<<10, 1)
	}()
}

func TestDyadicHeavyHitters(t *testing.T) {
	d := NewDyadicCountMin(16, 2048, 5, 36)
	rng := randx.New(37)
	// Three hot values among uniform noise.
	hot := []uint64{100, 5000, 60000}
	const n = 100000
	for i := 0; i < n; i++ {
		switch {
		case i%10 < 2:
			d.Add(hot[0], 1)
		case i%10 < 3:
			d.Add(hot[1], 1)
		case i%10 < 4:
			d.Add(hot[2], 1)
		default:
			d.Add(uint64(rng.Intn(1<<16)), 1)
		}
	}
	got := d.HeavyHitters(0.05)
	found := map[uint64]bool{}
	for _, vc := range got {
		found[vc.Value] = true
	}
	for _, h := range hot {
		if !found[h] {
			t.Errorf("heavy value %d missed (got %v)", h, got)
		}
	}
	// The hottest (20%) value must rank first.
	if len(got) == 0 || got[0].Value != hot[0] {
		t.Errorf("hottest value not ranked first: %v", got)
	}
	// No value below ~2% should appear at a 5% threshold (CM noise
	// bound makes a little slack necessary).
	for _, vc := range got {
		if vc.Count < uint64(0.02*n) {
			t.Errorf("spurious heavy hitter %v", vc)
		}
	}
}

func TestDyadicRangeEdgeCases(t *testing.T) {
	d := NewDyadicCountMin(8, 128, 3, 35)
	for i := uint64(0); i < 256; i++ {
		d.Add(i, 1)
	}
	if d.RangeCount(5, 4) != 0 {
		t.Error("inverted range should be 0")
	}
	if got := d.RangeCount(0, 0); got < 1 {
		t.Error("single-point range lost")
	}
	if got := d.RangeCount(0, 10000); got < 256 {
		t.Error("clamped range lost items")
	}
}

func BenchmarkCountMinAdd(b *testing.B) {
	cm := NewCountMin(2048, 5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.AddUint64(uint64(i), 1)
	}
}

func BenchmarkCountMinEstimate(b *testing.B) {
	cm := NewCountMin(2048, 5, 1)
	for i := 0; i < 100000; i++ {
		cm.AddUint64(uint64(i), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.EstimateUint64(uint64(i))
	}
}

func BenchmarkCountSketchAdd(b *testing.B) {
	cs := NewCountSketch(2048, 5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.AddUint64(uint64(i), 1)
	}
}

func BenchmarkSpaceSavingAdd(b *testing.B) {
	ss := NewSpaceSaving(1024)
	rng := randx.New(1)
	z := randx.NewZipf(rng, 1.1, 1<<20)
	items := make([]string, 4096)
	for i := range items {
		items[i] = fmt.Sprint(z.Next())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss.Add(items[i%len(items)], 1)
	}
}
