package frequency

// Tests for the derived (hash-once) fast lane added alongside the
// KWise reference rows: batch/string entry points must be byte-exact
// against the single-item path, both row-hash modes must deliver their
// accuracy guarantees, and the wire format must round-trip the mode
// (with version-1 payloads still decoding as KWise).

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/hashx"
)

func TestCountMinAddHashBatchMatchesSequential(t *testing.T) {
	hs := make([]uint64, 4096)
	for i := range hs {
		hs[i] = hashx.HashUint64(uint64(i), 99)
	}
	seq := NewCountMin(1024, 5, 3)
	bat := NewCountMin(1024, 5, 3)
	for _, h := range hs {
		seq.AddHash(h, 1)
	}
	bat.AddHashBatch(hs)
	a, _ := seq.MarshalBinary()
	b, _ := bat.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("AddHashBatch state differs from sequential AddHash")
	}
}

func TestCountMinStringMatchesBytes(t *testing.T) {
	viaBytes := NewCountMin(1024, 5, 3)
	viaString := NewCountMin(1024, 5, 3)
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("string-equiv-%06d", i)
		viaBytes.Add([]byte(key), 1)
		viaString.AddString(key)
	}
	a, _ := viaBytes.MarshalBinary()
	b, _ := viaString.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("AddString state differs from Add on the same keys")
	}
	if got, want := viaString.EstimateString("string-equiv-000042"), viaBytes.Estimate([]byte("string-equiv-000042")); got != want {
		t.Fatalf("EstimateString = %d, Estimate = %d", got, want)
	}
}

// skewedStream feeds a deterministic skewed stream (item i appears
// total/(i+1) times) and returns the exact counts.
func skewedStream(add func(item uint64, weight uint64)) map[uint64]uint64 {
	truth := make(map[uint64]uint64)
	for i := uint64(0); i < 500; i++ {
		w := 5000 / (i + 1)
		add(i, w)
		truth[i] = w
	}
	return truth
}

func TestCountMinDerivedAndKWiseBothWithinBound(t *testing.T) {
	for _, tc := range []struct {
		name string
		cm   *CountMin
	}{
		{"derived", NewCountMin(2048, 5, 11)},
		{"kwise", NewCountMinKWise(2048, 5, 11)},
	} {
		truth := skewedStream(func(item, w uint64) { tc.cm.AddUint64(item, w) })
		bound := uint64(tc.cm.ErrorBound()) + 1
		for item, want := range truth {
			got := tc.cm.EstimateUint64(item)
			if got < want {
				t.Fatalf("%s: estimate(%d) = %d underestimates true %d", tc.name, item, got, want)
			}
			if got > want+bound {
				t.Errorf("%s: estimate(%d) = %d exceeds %d + bound %d", tc.name, item, got, want, bound)
			}
		}
	}
}

func TestCountMinModeRoundTripAndMergeGuard(t *testing.T) {
	derived := NewCountMin(512, 4, 5)
	kwise := NewCountMinKWise(512, 4, 5)
	for i := uint64(0); i < 1000; i++ {
		derived.AddUint64(i, 1)
		kwise.AddUint64(i, 1)
	}
	for _, tc := range []struct {
		name string
		cm   *CountMin
	}{{"derived", derived}, {"kwise", kwise}} {
		data, err := tc.cm.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back CountMin
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if back.Derived() != tc.cm.Derived() {
			t.Fatalf("%s: round-trip flipped Derived() to %v", tc.name, back.Derived())
		}
		if got, want := back.EstimateUint64(7), tc.cm.EstimateUint64(7); got != want {
			t.Fatalf("%s: round-trip estimate %d != %d", tc.name, got, want)
		}
		round, _ := back.MarshalBinary()
		if !bytes.Equal(round, data) {
			t.Fatalf("%s: second marshal differs", tc.name)
		}
	}
	if err := derived.Merge(kwise); !errors.Is(err, core.ErrIncompatible) {
		t.Fatalf("Merge(derived, kwise) = %v, want ErrIncompatible", err)
	}
}

func TestCountMinVersion1DecodesAsKWise(t *testing.T) {
	// Hand-write a version-1 envelope (no mode byte): it must decode as
	// a KWise sketch whose estimates match a live KWise twin.
	ref := NewCountMinKWise(256, 4, 9)
	for i := uint64(0); i < 500; i++ {
		ref.AddUint64(i%50, 1)
	}
	w := core.NewWriter(core.TagCountMin, 1)
	w.U32(uint32(ref.width))
	w.U32(uint32(len(ref.counts)))
	w.U64(ref.seed)
	w.U64(ref.n)
	w.U8(0) // conservative=false; v1 ends here, before the mode byte
	for _, row := range ref.counts {
		w.U64Slice(row)
	}
	var back CountMin
	if err := back.UnmarshalBinary(w.Bytes()); err != nil {
		t.Fatal(err)
	}
	if back.Derived() {
		t.Fatal("version-1 payload decoded as derived; want KWise")
	}
	for i := uint64(0); i < 50; i++ {
		if got, want := back.EstimateUint64(i), ref.EstimateUint64(i); got != want {
			t.Fatalf("estimate(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestCountSketchModeRoundTripAndMergeGuard(t *testing.T) {
	derived := NewCountSketch(512, 5, 5)
	kwise := NewCountSketchKWise(512, 5, 5)
	for i := uint64(0); i < 1000; i++ {
		derived.AddUint64(i%100, 1)
		kwise.AddUint64(i%100, 1)
	}
	for _, tc := range []struct {
		name string
		cs   *CountSketch
	}{{"derived", derived}, {"kwise", kwise}} {
		data, err := tc.cs.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back CountSketch
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if back.Derived() != tc.cs.Derived() {
			t.Fatalf("%s: round-trip flipped Derived()", tc.name)
		}
		if got, want := back.EstimateUint64(7), tc.cs.EstimateUint64(7); got != want {
			t.Fatalf("%s: round-trip estimate %d != %d", tc.name, got, want)
		}
	}
	if err := derived.Merge(kwise); !errors.Is(err, core.ErrIncompatible) {
		t.Fatalf("Merge(derived, kwise) = %v, want ErrIncompatible", err)
	}
}

func TestCountSketchDerivedAccuracy(t *testing.T) {
	cs := NewCountSketch(2048, 5, 13)
	truth := skewedStream(func(item, w uint64) { cs.AddUint64(item, int64(w)) })
	bound := int64(3 * cs.ErrorBoundL2()) // median of 5 rows, 3σ slack
	for item, want := range truth {
		got := cs.EstimateUint64(item)
		if got < int64(want)-bound || got > int64(want)+bound {
			t.Errorf("derived estimate(%d) = %d, true %d, allowed ±%d", item, got, want, bound)
		}
	}
}

// The pre-hashed contract: Add(item, w) == AddHash(XXHash64(item, seed), w)
// in BOTH row-hash modes, so pipelines that pre-hash items may freely mix
// AddHash writes with Estimate(item) reads. A reviewer caught derived mode
// breaking this (Add hashed with Murmur3_128 while AddHash derived from h),
// which silently routed pre-hashed writes to different buckets.
func TestCountMinAddHashMatchesAdd(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() *CountMin
	}{
		{"derived", func() *CountMin { return NewCountMin(1024, 5, 21) }},
		{"kwise", func() *CountMin { return NewCountMinKWise(1024, 5, 21) }},
	} {
		viaItem, viaHash := tc.mk(), tc.mk()
		for i := 0; i < 2000; i++ {
			item := []byte(fmt.Sprintf("prehash-equiv-%06d", i))
			viaItem.Add(item, 3)
			viaHash.AddHash(hashx.XXHash64(item, viaHash.Seed()), 3)
		}
		a, _ := viaItem.MarshalBinary()
		b, _ := viaHash.MarshalBinary()
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: AddHash(XXHash64(item)) state differs from Add(item)", tc.name)
		}
		probe := []byte("prehash-equiv-000042")
		if got, want := viaHash.Estimate(probe), viaItem.Estimate(probe); got != want {
			t.Fatalf("%s: Estimate after AddHash writes = %d, want %d", tc.name, got, want)
		}
	}
}

func TestCountSketchAddHashMatchesAdd(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() *CountSketch
	}{
		{"derived", func() *CountSketch { return NewCountSketch(1024, 5, 23) }},
		{"kwise", func() *CountSketch { return NewCountSketchKWise(1024, 5, 23) }},
	} {
		viaItem, viaHash := tc.mk(), tc.mk()
		for i := 0; i < 2000; i++ {
			item := []byte(fmt.Sprintf("cs-prehash-%06d", i))
			viaItem.Add(item, 2)
			viaHash.AddHash(hashx.XXHash64(item, 23), 2)
		}
		a, _ := viaItem.MarshalBinary()
		b, _ := viaHash.MarshalBinary()
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: AddHash(XXHash64(item)) state differs from Add(item)", tc.name)
		}
		if got, want := viaHash.Estimate([]byte("cs-prehash-000042")), viaItem.Estimate([]byte("cs-prehash-000042")); got != want {
			t.Fatalf("%s: Estimate after AddHash writes = %d, want %d", tc.name, got, want)
		}
	}
}

// Derived-mode signs draw one bit per row from a single 64-bit word, so
// the constructor must refuse depths that would wrap and correlate rows.
func TestCountSketchDepthCap(t *testing.T) {
	if got := NewCountSketch(16, 63, 1).Depth(); got != 63 {
		t.Fatalf("depth 63 accepted as %d", got)
	}
	for _, depth := range []int{64, 65, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCountSketch(depth=%d) did not panic", depth)
				}
			}()
			NewCountSketch(16, depth, 1)
		}()
	}
	// A hand-built derived-mode envelope past the cap must be rejected.
	w := core.NewWriter(core.TagCountSketch, 2)
	w.U32(4)  // width
	w.U32(65) // depth: legal for kwise payloads, not for derived
	w.U64(1)  // seed
	w.U64(0)  // n
	w.U8(0)   // mode byte: derived
	for i := 0; i < 65; i++ {
		w.I64Slice(make([]int64, 4))
	}
	var back CountSketch
	if err := back.UnmarshalBinary(w.Bytes()); !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("derived depth-65 payload: err = %v, want ErrCorrupt", err)
	}
}

func TestCountSketchStringMatchesBytes(t *testing.T) {
	viaBytes := NewCountSketch(512, 5, 3)
	viaString := NewCountSketch(512, 5, 3)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("cs-equiv-%06d", i)
		viaBytes.Add([]byte(key), 2)
		viaString.AddString(key, 2)
	}
	a, _ := viaBytes.MarshalBinary()
	b, _ := viaString.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("AddString state differs from Add on the same keys")
	}
}
