package frequency

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/hashx"
)

// SFSketch is the two-stage Slim-Fat sketch (Yang et al., "SF-sketch:
// A Two-stage Sketch for Data Streams"): a large *fat* Count-Min grid
// absorbs every update locally, and a small *slim* grid — the only
// stage that ships on the wire — is raised conditionally, one counter
// per row, never past the fat stage's current estimate of the item.
// Because the slim counters track per-item estimates instead of raw
// collision sums, a slim grid of w_s counters answers point queries
// with error close to the fat stage's (width ratio·w_s) rather than a
// plain Count-Min's at width w_s: far better accuracy per transmitted
// byte, which is the whole game for scatter-gather reads, bundles and
// federated fan-ins.
//
// Invariant (never undercount): when item e arrives with weight w, the
// fat stage is updated first, so its estimate F satisfies F ≥ f(e).
// Each slim counter c covering e is then raised to min(c+w, F) — and
// only if c < F. By induction c ≥ f(e) before the update, so both
// c+w ≥ f(e)+w and F ≥ f(e)+w keep the counter an overestimate; other
// items sharing the counter only ever see it grow. A point query is
// the minimum over the slim rows, exactly as in Count-Min.
//
// Both stages derive their row positions from ONE 64-bit hash of the
// item (the hash-once discipline of the Count-Min fast lane): the fat
// rows by double hashing h directly, the slim rows by double hashing a
// remixed copy of h, so slim-only decoders can still address queries
// from (item, seed) alone. Updates and queries are 0 allocs/op.
type SFSketch struct {
	slim      [][]uint64 // slimDepth × slimWidth; the wire stage
	fat       [][]uint64 // fatDepth × fatWidth; nil in a slim-only instance
	slimWidth int
	slimDepth int
	fatWidth  int
	fatDepth  int
	seed      uint64
	n         uint64 // total weight, both stages' streams are identical
}

// sfSlimSalt decorrelates the slim stage's double-hashing stream from
// the fat stage's: the slim rows address from Mix64(h ^ sfSlimSalt)
// rather than h itself, so an item's slim buckets are independent of
// its fat buckets while still deriving from the single item hash.
const sfSlimSalt = 0xd6e8feb86659fd93

func sfSlimHash(h uint64) uint64 { return hashx.Mix64(h ^ sfSlimSalt) }

// sfMaxDepth caps decoded stage depths; real configurations use
// depth = O(log 1/δ) ≲ 30, so anything larger is corrupt input.
const sfMaxDepth = 64

// NewSFSketch creates a two-stage SF-sketch: a slimWidth×slimDepth
// slim stage (the wire representation) backed by a fatWidth×fatDepth
// fat stage (the update absorber). fatWidth is usually a small
// multiple of slimWidth — the paper's regime — and both stages share
// one hash seed.
func NewSFSketch(slimWidth, slimDepth, fatWidth, fatDepth int, seed uint64) *SFSketch {
	if slimWidth < 1 || slimDepth < 1 || fatWidth < 1 || fatDepth < 1 {
		panic("frequency: SFSketch dimensions must be positive")
	}
	s := &SFSketch{
		slim:      makeGrid(slimDepth, slimWidth),
		fat:       makeGrid(fatDepth, fatWidth),
		slimWidth: slimWidth,
		slimDepth: slimDepth,
		fatWidth:  fatWidth,
		fatDepth:  fatDepth,
		seed:      seed,
	}
	return s
}

func makeGrid(depth, width int) [][]uint64 {
	g := make([][]uint64, depth)
	for i := range g {
		g[i] = make([]uint64, width)
	}
	return g
}

// Add increments item's count by weight: one hash pass, every row
// position in both stages derived from it.
func (s *SFSketch) Add(item []byte, weight uint64) {
	s.AddHash(hashx.XXHash64(item, s.seed), weight)
}

// AddUint64 increments an integer item's count by weight.
func (s *SFSketch) AddUint64(item, weight uint64) {
	s.AddHash(hashx.HashUint64(item, s.seed), weight)
}

// AddString increments a string item's count by one without copying or
// allocating.
func (s *SFSketch) AddString(item string) {
	s.AddHash(hashx.XXHash64String(item, s.seed), 1)
}

// Update implements core.Updater (weight 1).
func (s *SFSketch) Update(item []byte) { s.Add(item, 1) }

// AddHash folds a pre-hashed item into both stages. On a full-fat
// instance the fat rows are bumped first and their post-update minimum
// caps the conditional slim updates. A slim-only instance (decoded
// from a slim envelope) has no fat stage to consult, so it degrades to
// a plain Count-Min update over the slim grid — still never an
// undercount, just without the two-stage accuracy gain; slim-only
// instances exist to be queried and merged, not to absorb streams.
func (s *SFSketch) AddHash(h, weight uint64) {
	s.n += weight
	hs := sfSlimHash(h)
	hs2 := hashx.DeriveH2(hs)
	sw := uint64(s.slimWidth)
	if s.fat == nil {
		y := hs
		for r := range s.slim {
			s.slim[r][hashx.FastRange(y, sw)] += weight
			y += hs2
		}
		return
	}
	// Fat stage: plain double-hashed adds; the running minimum of the
	// *new* counter values is exactly the post-update fat estimate.
	h2 := hashx.DeriveH2(h)
	fw := uint64(s.fatWidth)
	x := h
	fatEst := uint64(math.MaxUint64)
	for r := range s.fat {
		row := s.fat[r]
		j := hashx.FastRange(x, fw)
		v := row[j] + weight
		row[j] = v
		if v < fatEst {
			fatEst = v
		}
		x += h2
	}
	// Slim stage: raise each counter toward the fat estimate, never
	// past it. Counters already at or above fatEst are left alone.
	y := hs
	for r := range s.slim {
		row := s.slim[r]
		j := hashx.FastRange(y, sw)
		if c := row[j]; c < fatEst {
			if nc := c + weight; nc < fatEst {
				row[j] = nc
			} else {
				row[j] = fatEst
			}
		}
		y += hs2
	}
}

// AddBatch increments each item's count by one. Chunks are hashed with
// pure ALU work before the counter updates stream, as in
// CountMin.AddBatch; the per-item update itself stays scalar because
// the conditional slim update is read-dependent and order-sensitive
// (like conservative update). State is byte-identical to calling
// Add(item, 1) per item in order.
func (s *SFSketch) AddBatch(items [][]byte) {
	var hs [ingestChunk]uint64
	for len(items) > 0 {
		n := len(items)
		if n > ingestChunk {
			n = ingestChunk
		}
		for i, item := range items[:n] {
			hs[i] = hashx.XXHash64(item, s.seed)
		}
		s.AddHashBatch(hs[:n])
		items = items[n:]
	}
}

// AddHashBatch folds many pre-hashed items in, each with weight 1, in
// order. Byte-identical to calling AddHash per item.
func (s *SFSketch) AddHashBatch(hs []uint64) {
	for _, h := range hs {
		s.AddHash(h, 1)
	}
}

// Estimate returns the point-query estimate for item: the minimum over
// the slim rows. Never an undercount (see the type invariant).
func (s *SFSketch) Estimate(item []byte) uint64 {
	return s.EstimateHash(hashx.XXHash64(item, s.seed))
}

// EstimateUint64 returns the point-query estimate for an integer item.
func (s *SFSketch) EstimateUint64(item uint64) uint64 {
	return s.EstimateHash(hashx.HashUint64(item, s.seed))
}

// EstimateString returns the point-query estimate for a string item
// without copying or allocating.
func (s *SFSketch) EstimateString(item string) uint64 {
	return s.EstimateHash(hashx.XXHash64String(item, s.seed))
}

// EstimateHash answers a point query for a pre-hashed item from the
// slim stage.
func (s *SFSketch) EstimateHash(h uint64) uint64 {
	hs := sfSlimHash(h)
	hs2 := hashx.DeriveH2(hs)
	sw := uint64(s.slimWidth)
	est := uint64(math.MaxUint64)
	y := hs
	for r := range s.slim {
		if v := s.slim[r][hashx.FastRange(y, sw)]; v < est {
			est = v
		}
		y += hs2
	}
	return est
}

// FatEstimate answers a point query from the fat stage — the estimate
// a same-size plain Count-Min would give. It exists for diagnostics
// and the accuracy-per-byte experiment (E33); slim-only instances
// fall back to the slim estimate.
func (s *SFSketch) FatEstimate(item []byte) uint64 {
	if s.fat == nil {
		return s.Estimate(item)
	}
	h := hashx.XXHash64(item, s.seed)
	h2 := hashx.DeriveH2(h)
	fw := uint64(s.fatWidth)
	est := uint64(math.MaxUint64)
	x := h
	for r := range s.fat {
		if v := s.fat[r][hashx.FastRange(x, fw)]; v < est {
			est = v
		}
		x += h2
	}
	return est
}

// N returns the total weight added.
func (s *SFSketch) N() uint64 { return s.n }

// Seed returns the hash seed the sketch was created with.
func (s *SFSketch) Seed() uint64 { return s.seed }

// Width returns the slim-stage width (the wire-relevant dimension).
func (s *SFSketch) Width() int { return s.slimWidth }

// Depth returns the slim-stage depth.
func (s *SFSketch) Depth() int { return s.slimDepth }

// FatWidth returns the fat-stage width.
func (s *SFSketch) FatWidth() int { return s.fatWidth }

// FatDepth returns the fat-stage depth.
func (s *SFSketch) FatDepth() int { return s.fatDepth }

// SlimOnly reports whether this instance carries only the slim stage
// (decoded from a slim envelope or merged from slim envelopes).
func (s *SFSketch) SlimOnly() bool { return s.fat == nil }

// SizeBytes returns the resident counter storage: both stages on a
// full instance, the slim grid alone on a slim-only one.
func (s *SFSketch) SizeBytes() int {
	sz := s.slimDepth * s.slimWidth * 8
	if s.fat != nil {
		sz += s.fatDepth * s.fatWidth * 8
	}
	return sz
}

// SlimSizeBytes returns the slim-stage counter bytes — the payload a
// slim envelope ships (plus the fixed header).
func (s *SFSketch) SlimSizeBytes() int { return s.slimDepth * s.slimWidth * 8 }

// ErrorBound returns the fat stage's additive error bound ε·N =
// (e/fatWidth)·N — the error regime the slim estimates track. For a
// slim-only instance the bound degrades to the slim width's.
func (s *SFSketch) ErrorBound() float64 {
	w := s.fatWidth
	if s.fat == nil {
		w = s.slimWidth
	}
	return math.E / float64(w) * float64(s.n)
}

func (s *SFSketch) compatible(other *SFSketch) error {
	if s.slimWidth != other.slimWidth || s.slimDepth != other.slimDepth ||
		s.fatWidth != other.fatWidth || s.fatDepth != other.fatDepth || s.seed != other.seed {
		return fmt.Errorf("%w: sf-sketch slim %dx%d fat %dx%d seed=%d vs slim %dx%d fat %dx%d seed=%d",
			core.ErrIncompatible,
			s.slimWidth, s.slimDepth, s.fatWidth, s.fatDepth, s.seed,
			other.slimWidth, other.slimDepth, other.fatWidth, other.fatDepth, other.seed)
	}
	return nil
}

// Merge folds another sketch's counters in cell-wise. Full+full merges
// sum both stages; slim+slim merges (the query-side path a coordinator
// uses after a slim gather) sum the slim grids — the sum of per-shard
// overestimates is still an overestimate of the combined stream, at
// some conservatism cost relative to a full merge. Mixing a full and a
// slim-only instance is rejected: a fat stage that missed part of the
// stream would cap later conditional updates below the true count and
// break the no-undercount invariant.
func (s *SFSketch) Merge(other *SFSketch) error {
	if err := s.compatible(other); err != nil {
		return err
	}
	if (s.fat == nil) != (other.fat == nil) {
		return fmt.Errorf("%w: sf-sketch slim-only and full-fat instances do not merge", core.ErrIncompatible)
	}
	for r := range s.slim {
		for j, v := range other.slim[r] {
			s.slim[r][j] += v
		}
	}
	if s.fat != nil {
		for r := range s.fat {
			for j, v := range other.fat[r] {
				s.fat[r][j] += v
			}
		}
	}
	s.n += other.n
	return nil
}

// Clone returns a deep copy.
func (s *SFSketch) Clone() *SFSketch {
	cp := &SFSketch{
		slim:      makeGrid(s.slimDepth, s.slimWidth),
		slimWidth: s.slimWidth,
		slimDepth: s.slimDepth,
		fatWidth:  s.fatWidth,
		fatDepth:  s.fatDepth,
		seed:      s.seed,
		n:         s.n,
	}
	for r := range s.slim {
		copy(cp.slim[r], s.slim[r])
	}
	if s.fat != nil {
		cp.fat = makeGrid(s.fatDepth, s.fatWidth)
		for r := range s.fat {
			copy(cp.fat[r], s.fat[r])
		}
	}
	return cp
}

// Mode byte values in the SF wire envelope.
const (
	sfModeFull byte = 0 // both stages on the wire (durability, replication)
	sfModeSlim byte = 1 // slim stage only (scatter-gather, bundles)
)

// MarshalBinary serializes the sketch: full mode when the fat stage is
// resident, slim mode for a slim-only instance — so a slim envelope
// decodes and re-marshals byte-identically. Durability and replication
// always see full envelopes (they need byte-identical recovery of the
// whole state); slim envelopes are produced on demand by MarshalSlim
// for the wire paths that trade state for bytes.
func (s *SFSketch) MarshalBinary() ([]byte, error) {
	if s.fat == nil {
		return s.MarshalSlim()
	}
	w := s.marshalHeader(sfModeFull)
	for _, row := range s.slim {
		w.U64Slice(row)
	}
	for _, row := range s.fat {
		w.U64Slice(row)
	}
	return w.Bytes(), nil
}

// MarshalSlim serializes the slim stage only: the same versioned GSK1
// envelope with the slim mode byte, both stages' shapes (so merge
// compatibility checks survive the trip), and just the slim grid.
// For the default shape the payload is fatWidth/slimWidth-times
// smaller than a full envelope.
func (s *SFSketch) MarshalSlim() ([]byte, error) {
	w := s.marshalHeader(sfModeSlim)
	for _, row := range s.slim {
		w.U64Slice(row)
	}
	return w.Bytes(), nil
}

func (s *SFSketch) marshalHeader(mode byte) *core.Writer {
	w := core.NewWriter(core.TagSFSketch, 1)
	w.U8(mode)
	w.U32(uint32(s.slimWidth))
	w.U32(uint32(s.slimDepth))
	w.U32(uint32(s.fatWidth))
	w.U32(uint32(s.fatDepth))
	w.U64(s.seed)
	w.U64(s.n)
	return w
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary or
// MarshalSlim. A slim envelope yields a slim-only instance (fat stage
// nil) that answers queries and merges with other slim-only peers.
func (s *SFSketch) UnmarshalBinary(data []byte) error {
	r, _, err := core.NewReaderVersioned(data, core.TagSFSketch, 1)
	if err != nil {
		return err
	}
	mode := r.U8()
	slimWidth := int(r.U32())
	slimDepth := int(r.U32())
	fatWidth := int(r.U32())
	fatDepth := int(r.U32())
	seed := r.U64()
	n := r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	if mode > sfModeSlim {
		return fmt.Errorf("%w: sf-sketch mode byte %d", core.ErrCorrupt, mode)
	}
	if slimWidth < 1 || slimDepth < 1 || slimDepth > sfMaxDepth ||
		fatWidth < 1 || fatDepth < 1 || fatDepth > sfMaxDepth {
		return fmt.Errorf("%w: sf-sketch dims slim %dx%d fat %dx%d",
			core.ErrCorrupt, slimWidth, slimDepth, fatWidth, fatDepth)
	}
	slim := make([][]uint64, slimDepth)
	for i := range slim {
		slim[i] = r.U64Slice()
		if len(slim[i]) != slimWidth {
			return fmt.Errorf("%w: sf-sketch slim row %d length %d", core.ErrCorrupt, i, len(slim[i]))
		}
	}
	var fat [][]uint64
	if mode == sfModeFull {
		fat = make([][]uint64, fatDepth)
		for i := range fat {
			fat[i] = r.U64Slice()
			if len(fat[i]) != fatWidth {
				return fmt.Errorf("%w: sf-sketch fat row %d length %d", core.ErrCorrupt, i, len(fat[i]))
			}
		}
	}
	if err := r.Done(); err != nil {
		return err
	}
	*s = SFSketch{
		slim:      slim,
		fat:       fat,
		slimWidth: slimWidth,
		slimDepth: slimDepth,
		fatWidth:  fatWidth,
		fatDepth:  fatDepth,
		seed:      seed,
		n:         n,
	}
	return nil
}
