package frequency

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// MisraGries is the deterministic frequent-items summary (Misra &
// Gries 1982), generalizing Boyer–Moore majority voting to k counters:
// maintain at most k (item, count) pairs; on overflow decrement all
// counters (conceptually cancelling k+1 distinct items against each
// other). Every estimate undercounts by at most N/(k+1), so all items
// with true frequency above N/(k+1) are retained — the heavy hitters
// guarantee of experiment E5. Merging follows Mergeable Summaries
// (PODS 2012): add counters, then subtract the (k+1)-st largest from
// all and discard non-positive ones.
type MisraGries struct {
	counters map[string]uint64
	k        int
	n        uint64
	decs     uint64 // total decrement offset (lower-bounds the undercount)
}

// NewMisraGries creates a summary with k counters; items with frequency
// above N/(k+1) are guaranteed to be tracked.
func NewMisraGries(k int) *MisraGries {
	if k < 1 {
		panic("frequency: MisraGries requires k >= 1")
	}
	return &MisraGries{counters: make(map[string]uint64, k+1), k: k}
}

// Add registers weight occurrences of item.
func (m *MisraGries) Add(item string, weight uint64) {
	m.n += weight
	if c, ok := m.counters[item]; ok {
		m.counters[item] = c + weight
		return
	}
	if len(m.counters) < m.k {
		m.counters[item] = weight
		return
	}
	// Decrement all counters by the smallest amount that frees a slot
	// (batch decrement: min(weight, current minimum counter)).
	min := weight
	for _, c := range m.counters {
		if c < min {
			min = c
		}
	}
	m.decs += min
	for it, c := range m.counters {
		if c <= min {
			delete(m.counters, it)
		} else {
			m.counters[it] = c - min
		}
	}
	if weight > min {
		m.counters[item] = weight - min
	}
}

// AddString registers one occurrence of item.
func (m *MisraGries) AddString(item string) { m.Add(item, 1) }

// Update implements core.Updater.
func (m *MisraGries) Update(item []byte) { m.Add(string(item), 1) }

// Estimate returns the tracked count of item (0 if untracked). The true
// frequency lies in [Estimate, Estimate + N/(k+1)].
func (m *MisraGries) Estimate(item string) uint64 { return m.counters[item] }

// ErrorBound returns the maximum possible undercount N/(k+1).
func (m *MisraGries) ErrorBound() uint64 { return m.n / uint64(m.k+1) }

// N returns the total weight processed.
func (m *MisraGries) N() uint64 { return m.n }

// K returns the counter budget.
func (m *MisraGries) K() int { return m.k }

// Entry is a tracked item with its estimated count.
type Entry struct {
	Item  string
	Count uint64
}

// HeavyHitters returns tracked items whose estimated frequency could
// meet threshold·N, sorted by descending count. With threshold φ and
// error ε = 1/(k+1), the output contains every item with true frequency
// ≥ φN (no false negatives) and none below (φ−ε)N.
func (m *MisraGries) HeavyHitters(threshold float64) []Entry {
	cut := uint64(threshold * float64(m.n)) // compare lower bound + slack
	var out []Entry
	for it, c := range m.counters {
		if c+m.ErrorBound() >= cut && cut > 0 {
			out = append(out, Entry{Item: it, Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// Entries returns all tracked items sorted by descending count.
func (m *MisraGries) Entries() []Entry {
	out := make([]Entry, 0, len(m.counters))
	for it, c := range m.counters {
		out = append(out, Entry{Item: it, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// Merge combines another summary with the same k (Agarwal et al. 2013):
// sum counters, then reduce back to k entries by subtracting the
// (k+1)-st largest count.
func (m *MisraGries) Merge(other *MisraGries) error {
	if m.k != other.k {
		return fmt.Errorf("%w: misra-gries k=%d vs k=%d", core.ErrIncompatible, m.k, other.k)
	}
	for it, c := range other.counters {
		m.counters[it] += c
	}
	m.n += other.n
	m.decs += other.decs
	if len(m.counters) > m.k {
		counts := make([]uint64, 0, len(m.counters))
		for _, c := range m.counters {
			counts = append(counts, c)
		}
		sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
		sub := counts[m.k] // (k+1)-st largest
		m.decs += sub
		for it, c := range m.counters {
			if c <= sub {
				delete(m.counters, it)
			} else {
				m.counters[it] = c - sub
			}
		}
	}
	return nil
}

// MarshalBinary serializes the summary.
func (m *MisraGries) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagMisraGries, 1)
	w.U32(uint32(m.k))
	w.U64(m.n)
	w.U64(m.decs)
	entries := m.Entries()
	w.U32(uint32(len(entries)))
	for _, e := range entries {
		w.BytesField([]byte(e.Item))
		w.U64(e.Count)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary restores a summary serialized by MarshalBinary.
func (m *MisraGries) UnmarshalBinary(data []byte) error {
	r, _, err := core.NewReader(data, core.TagMisraGries)
	if err != nil {
		return err
	}
	k := int(r.U32())
	n := r.U64()
	decs := r.U64()
	cnt := r.Count(12) // len-prefixed item (≥4 bytes) + U64 count
	if r.Err() != nil {
		return r.Err()
	}
	if k < 1 || cnt > k {
		return fmt.Errorf("%w: misra-gries k=%d entries=%d", core.ErrCorrupt, k, cnt)
	}
	counters := make(map[string]uint64, cnt)
	for i := 0; i < cnt; i++ {
		item := string(r.BytesField())
		counters[item] = r.U64()
	}
	if err := r.Done(); err != nil {
		return err
	}
	m.k, m.n, m.decs, m.counters = k, n, decs, counters
	return nil
}
