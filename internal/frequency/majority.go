package frequency

// Majority is the Boyer–Moore majority-vote algorithm (1981), the
// one-counter ancestor of Misra–Gries: it finds the item occupying a
// strict majority of the stream, if one exists, in O(1) space. When no
// majority exists the candidate is arbitrary, so callers verify with a
// second pass (or accept the Misra–Gries guarantee instead).
type Majority struct {
	candidate string
	count     uint64
	n         uint64
}

// NewMajority returns an empty majority voter.
func NewMajority() *Majority { return &Majority{} }

// Add registers one occurrence of item.
func (m *Majority) Add(item string) {
	m.n++
	switch {
	case m.count == 0:
		m.candidate, m.count = item, 1
	case m.candidate == item:
		m.count++
	default:
		m.count--
	}
}

// Update implements core.Updater.
func (m *Majority) Update(item []byte) { m.Add(string(item)) }

// Candidate returns the current majority candidate and whether any
// items have been seen. If a strict majority item exists in the stream,
// it is guaranteed to be the candidate.
func (m *Majority) Candidate() (string, bool) {
	return m.candidate, m.n > 0
}

// N returns the number of items processed.
func (m *Majority) N() uint64 { return m.n }
