package frequency

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/core"
)

// DyadicCountMin supports range-count queries over an integer domain
// [0, 2^levels) by keeping one Count-Min sketch per dyadic level: level
// L summarizes the stream with items mapped to their length-2^L dyadic
// bucket. Any range decomposes into at most 2·levels dyadic intervals,
// so a range query sums that many point queries (ablation E4b). Range
// sums also yield approximate quantiles by binary search — the original
// Count-Min paper's application.
type DyadicCountMin struct {
	levels   int
	sketches []*CountMin // sketches[L] counts buckets of size 2^L
	n        uint64
}

// NewDyadicCountMin creates a dyadic structure over [0, 2^levels) with
// the given per-level sketch dimensions.
func NewDyadicCountMin(levels, width, depth int, seed uint64) *DyadicCountMin {
	if levels < 1 || levels > 32 {
		panic("frequency: dyadic levels must be in [1,32]")
	}
	sketches := make([]*CountMin, levels+1)
	for l := range sketches {
		sketches[l] = NewCountMin(width, depth, seed+uint64(l)*0x9e3779b97f4a7c15)
	}
	return &DyadicCountMin{levels: levels, sketches: sketches}
}

// Add increments the count of value x by weight. x must be inside the
// domain.
func (d *DyadicCountMin) Add(x uint64, weight uint64) {
	if x >= 1<<uint(d.levels) {
		panic(fmt.Sprintf("frequency: value %d outside dyadic domain 2^%d", x, d.levels))
	}
	for l := 0; l <= d.levels; l++ {
		d.sketches[l].AddUint64(x>>uint(l), weight)
	}
	d.n += weight
}

// RangeCount estimates the total weight of values in [lo, hi]
// inclusive. Error is at most 2·levels·ε·N with the per-sketch δ.
func (d *DyadicCountMin) RangeCount(lo, hi uint64) uint64 {
	if lo > hi {
		return 0
	}
	max := uint64(1)<<uint(d.levels) - 1
	if hi > max {
		hi = max
	}
	var total uint64
	// Standard dyadic decomposition: greedily take the largest aligned
	// block starting at lo that fits within [lo, hi].
	for lo <= hi {
		l := d.levels
		if lo > 0 && bits.TrailingZeros64(lo) < l {
			l = bits.TrailingZeros64(lo)
		}
		for l > 0 && lo+(1<<uint(l))-1 > hi {
			l--
		}
		total += d.sketches[l].EstimateUint64(lo >> uint(l))
		lo += 1 << uint(l)
		if lo == 0 { // cannot happen with levels <= 32, but keep the loop total
			break
		}
	}
	return total
}

// Quantile returns an approximate q-quantile of the inserted values:
// the smallest x whose estimated rank is at least q·N.
func (d *DyadicCountMin) Quantile(q float64) uint64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(d.n))
	var lo, hi uint64 = 0, (1 << uint(d.levels)) - 1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if d.RangeCount(0, mid) >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// HeavyHitters returns the values whose estimated count reaches
// threshold·N, found by descending the dyadic tree: a block is explored
// only if its range count reaches the threshold, so the query touches
// O((1/φ)·levels) point queries instead of the whole domain — the
// hierarchical heavy-hitters search from the Count-Min paper.
func (d *DyadicCountMin) HeavyHitters(threshold float64) []ValueCount {
	cut := uint64(threshold * float64(d.n))
	if cut == 0 {
		cut = 1
	}
	var out []ValueCount
	// Explore blocks (level, prefix) whose count clears the cut.
	type block struct {
		level  int
		prefix uint64
	}
	stack := []block{{d.levels, 0}}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		est := d.sketches[b.level].EstimateUint64(b.prefix)
		if est < cut {
			continue
		}
		if b.level == 0 {
			out = append(out, ValueCount{Value: b.prefix, Count: est})
			continue
		}
		stack = append(stack,
			block{b.level - 1, b.prefix << 1},
			block{b.level - 1, b.prefix<<1 | 1})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// ValueCount is one heavy hitter reported by DyadicCountMin.
type ValueCount struct {
	Value uint64
	Count uint64
}

// N returns the total inserted weight.
func (d *DyadicCountMin) N() uint64 { return d.n }

// SizeBytes returns the total storage across levels.
func (d *DyadicCountMin) SizeBytes() int {
	total := 0
	for _, s := range d.sketches {
		total += s.SizeBytes()
	}
	return total
}

// Merge combines with a compatible dyadic structure level by level.
func (d *DyadicCountMin) Merge(other *DyadicCountMin) error {
	if d.levels != other.levels {
		return fmt.Errorf("%w: dyadic levels %d vs %d", core.ErrIncompatible, d.levels, other.levels)
	}
	for l := range d.sketches {
		if err := d.sketches[l].Merge(other.sketches[l]); err != nil {
			return err
		}
	}
	d.n += other.n
	return nil
}
