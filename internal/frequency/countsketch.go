package frequency

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/hashx"
)

// CountSketch is the Charikar–Chen–Farach-Colton sketch: like Count-Min
// but each update is multiplied by a ±1 (Rademacher) sign hash, and the
// point query takes the median over rows of signed counters. Estimates
// are unbiased with additive error O(ε‖f‖₂) — the L2 guarantee that
// beats Count-Min's L1 bound on skewed data (experiment E4). The same
// structure later became the basis of sparse Johnson–Lindenstrauss
// transforms and of the FetchSGD gradient compressor (internal/jl,
// internal/fetchsgd).
type CountSketch struct {
	counts [][]int64
	flat   []int64        // fused mode: blocks × depth × 8 interleaved counters
	bucket []*hashx.KWise // KWise mode: 2-wise bucket hashes, one per row
	sign   []*hashx.KWise // KWise mode: 4-wise sign hashes, one per row
	width  int
	depth  int
	blocks uint64 // fused mode: 8-counter blocks per row (width/8)
	seed   uint64
	n      uint64
	kwise  bool // row buckets/signs from KWise polynomials instead of double hashing
	fused  bool // counters in the cache-line-interleaved fused layout
}

// NewCountSketch creates a width×depth Count Sketch. Depth should be
// odd so the median is unambiguous; even depths are raised by one.
// Row buckets and signs derive from a single 64-bit hash of the item
// (double hashing for buckets, bits of a remixed second stream for
// signs); NewCountSketchKWise keeps the per-row polynomial hashes the
// formal analysis assumes. Depth is capped at 63 (after the odd
// rounding): derived-mode signs come from one 64-bit word, one bit per
// row, and deeper sketches would silently reuse sign bits across rows.
// Real configurations use depth = O(log 1/δ) ≲ 30.
func NewCountSketch(width, depth int, seed uint64) *CountSketch {
	if width < 1 || depth < 1 {
		panic("frequency: CountSketch dimensions must be positive")
	}
	if depth%2 == 0 {
		depth++
	}
	if depth > 63 {
		panic("frequency: CountSketch depth must be <= 63 (derived signs draw one bit per row from a 64-bit word)")
	}
	counts := make([][]int64, depth)
	for i := range counts {
		counts[i] = make([]int64, width)
	}
	return &CountSketch{counts: counts, width: width, depth: depth, seed: seed}
}

// NewCountSketchFused creates a sketch in the fused cache-line layout
// (see NewCountMinFused): the depth counters an item touches live in
// depth adjacent 512-bit blocks, addressed by one block column plus a
// 3-bit slot per row, so an update streams depth consecutive cache
// lines instead of touching depth scattered rows. Width is rounded up
// to a multiple of 8; depth is rounded odd and capped at 21 (3 slot
// bits per row from one 64-bit word). Signs come from the same remixed
// word as derived mode — a separate word from the slots, so a row's
// sign never correlates with its bucket. Fused and standard sketches
// address different cells and do not merge with each other.
func NewCountSketchFused(width, depth int, seed uint64) *CountSketch {
	if width < 1 || depth < 1 {
		panic("frequency: CountSketch dimensions must be positive")
	}
	if depth%2 == 0 {
		depth++
	}
	if depth > fusedMaxDepth {
		panic("frequency: fused CountSketch depth must be <= 21 (3 slot bits per row from a 64-bit word)")
	}
	width = (width + 7) &^ 7
	return &CountSketch{
		flat:   make([]int64, width*depth),
		width:  width,
		depth:  depth,
		blocks: uint64(width / 8),
		seed:   seed,
		fused:  true,
	}
}

// NewCountSketchKWise creates a sketch on the slow path: per-row 2-wise
// bucket hashes and 4-wise sign hashes, the construction behind the L2
// guarantee proofs. The estimate-compatibility tests use it as the
// reference for the derived fast lane.
func NewCountSketchKWise(width, depth int, seed uint64) *CountSketch {
	c := NewCountSketch(width, depth, seed)
	c.kwise = true
	c.bucket, c.sign = newCountSketchRows(seed, len(c.counts))
	return c
}

// newCountSketchRows derives the per-row bucket and sign hash functions
// every KWise-mode sketch with the same (seed, depth) shares.
func newCountSketchRows(seed uint64, depth int) (bucket, sign []*hashx.KWise) {
	seeds := hashx.SeedSequence(seed, 2*depth)
	bucket = make([]*hashx.KWise, depth)
	sign = make([]*hashx.KWise, depth)
	for i := 0; i < depth; i++ {
		bucket[i] = hashx.NewKWise(2, seeds[2*i])
		sign[i] = hashx.NewKWise(4, seeds[2*i+1])
	}
	return bucket, sign
}

// Add adds weight (may be negative: turnstile streams are supported) to
// the count of item: one hash pass, all row buckets and signs derived
// from it. Add(item, w) is exactly equivalent to
// AddHash(hashx.XXHash64(item, seed), w) in both row-hash modes.
func (c *CountSketch) Add(item []byte, weight int64) {
	c.AddHash(hashx.XXHash64(item, c.seed), weight)
}

// AddUint64 adds weight to an integer item's count. Equivalent to
// AddHash(hashx.HashUint64(item, seed), weight).
func (c *CountSketch) AddUint64(item uint64, weight int64) {
	c.AddHash(hashx.HashUint64(item, c.seed), weight)
}

// AddString adds weight to a string item's count without copying or
// allocating. Equivalent to Add on the string's bytes.
func (c *CountSketch) AddString(item string, weight int64) {
	c.AddHash(hashx.XXHash64String(item, c.seed), weight)
}

// Update implements core.Updater (weight 1).
func (c *CountSketch) Update(item []byte) { c.Add(item, 1) }

// AddHash folds a pre-hashed item into the sketch. Every entry point —
// Add, AddUint64, AddString and the estimate paths — routes through the
// same h, so pipelines that pre-hash with hashx.XXHash64 (or
// hashx.HashUint64) can mix AddHash writes with Estimate(item) reads.
func (c *CountSketch) AddHash(h uint64, weight int64) {
	if c.fused {
		c.addHashFused(h, weight)
		return
	}
	if !c.kwise {
		c.addHashDerived(h, weight)
		return
	}
	for r := range c.counts {
		j := c.bucket[r].HashRange(h, c.width)
		c.counts[r][j] += c.sign[r].Sign(h) * weight
	}
	c.countWeight(weight)
}

// addHashDerived is the derived-mode fast lane: row r's bucket is
// FastRange(h + r·h2, width) with h2 = DeriveH2(h), and its sign is
// bit r of Mix64(h2) (remixed so the forced-odd stride bit never
// biases a sign). Depth ≤ 63 is enforced at construction, so each row
// reads a distinct sign bit.
func (c *CountSketch) addHashDerived(h uint64, weight int64) {
	h2 := hashx.DeriveH2(h)
	signBits := hashx.Mix64(h2)
	w := uint64(c.width)
	x := h
	for r := range c.counts {
		j := hashx.FastRange(x, w)
		// Branchless ±weight: a random sign branch would mispredict
		// half the time, one stall per row. m is 0 (keep) or -1
		// (negate via two's complement identity (v^m)-m).
		m := -int64(signBits >> uint(r) & 1)
		c.counts[r][j] += (weight ^ m) - m
		x += h2
	}
	c.countWeight(weight)
}

// fusedState returns the flat index of row 0's cache line in the block
// column h selects, the sign word (bit r = row r's sign, identical to
// derived mode), and the slot word whose 3-bit chunks pick each row's
// cell. Slots remix the sign word once more so a row's slot bits never
// overlap its sign bit (bit 0 of the sign word is one of row 0's slot
// bits if both streams share a word — that correlation would bias
// row 0's estimate).
func (c *CountSketch) fusedState(h uint64) (base, signBits, slots uint64) {
	signBits = hashx.Mix64(hashx.DeriveH2(h))
	return hashx.FastRange(h, c.blocks) * uint64(c.depth) * 8, signBits, hashx.Mix64(signBits)
}

// addHashFused is the fused-layout fast lane: depth consecutive cache
// lines, one signed counter bumped per line.
func (c *CountSketch) addHashFused(h uint64, weight int64) {
	base, signBits, slots := c.fusedState(h)
	for r := 0; r < c.depth; r++ {
		m := -int64(signBits & 1)
		c.flat[base+slots&7] += (weight ^ m) - m
		base += 8
		slots >>= 3
		signBits >>= 1
	}
	c.countWeight(weight)
}

func (c *CountSketch) estimateFused(h uint64) int64 {
	// The scratch rows fit a stack array (fused depth <= 21), and the
	// in-place odd-length median keeps this query path allocation-free
	// like the fused add path.
	var ests [fusedMaxDepth]int64
	base, signBits, slots := c.fusedState(h)
	for r := 0; r < c.depth; r++ {
		m := -int64(signBits & 1)
		ests[r] = (c.flat[base+slots&7] ^ m) - m
		base += 8
		slots >>= 3
		signBits >>= 1
	}
	return medianOddInPlace(ests[:c.depth])
}

// medianOddInPlace insertion-sorts xs (odd length, <= fusedMaxDepth
// elements) and returns the middle element. Equivalent to
// core.MedianInt64 for odd-length input, without the copy or the
// sort.Slice closure allocation.
func medianOddInPlace(xs []int64) int64 {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
	return xs[len(xs)/2]
}

// AddHashBatch folds many pre-hashed items in, each with weight 1,
// using the two-phase pipelined chunk loop in derived and fused modes
// (signed counter adds commute, so update order is free); KWise mode
// falls back to the scalar loop. State is identical to calling AddHash
// per item.
func (c *CountSketch) AddHashBatch(hs []uint64) {
	if c.kwise {
		for _, h := range hs {
			c.AddHash(h, 1)
		}
		return
	}
	if c.fused {
		c.addHashBatchFused(hs)
		return
	}
	c.addHashBatchDerived(hs)
}

// addHashBatchDerived processes chunks row-by-row, like the Count-Min
// batch loop, with each row's sign bit peeled from the precomputed
// sign words.
func (c *CountSketch) addHashBatchDerived(hs []uint64) {
	var xs, h2s, signs [ingestChunk]uint64
	w := uint64(c.width)
	for start := 0; start < len(hs); start += ingestChunk {
		end := start + ingestChunk
		if end > len(hs) {
			end = len(hs)
		}
		chunk := hs[start:end]
		for i, h := range chunk {
			h2 := hashx.DeriveH2(h)
			xs[i] = h
			h2s[i] = h2
			signs[i] = hashx.Mix64(h2)
		}
		for r := range c.counts {
			row := c.counts[r]
			for i := range chunk {
				m := -int64(signs[i] >> uint(r) & 1)
				row[hashx.FastRange(xs[i], w)] += (1 ^ m) - m
				xs[i] += h2s[i]
			}
		}
		c.n += uint64(len(chunk))
	}
}

// addHashBatchFused precomputes each chunk item's block base, sign and
// slot words (phase 1), then streams the depth-line updates (phase 2).
func (c *CountSketch) addHashBatchFused(hs []uint64) {
	var bases, signws, slotws [ingestChunk]uint64
	for start := 0; start < len(hs); start += ingestChunk {
		end := start + ingestChunk
		if end > len(hs) {
			end = len(hs)
		}
		chunk := hs[start:end]
		for i, h := range chunk {
			bases[i], signws[i], slotws[i] = c.fusedState(h)
		}
		for i := range chunk {
			base, signBits, slots := bases[i], signws[i], slotws[i]
			for r := 0; r < c.depth; r++ {
				m := -int64(signBits & 1)
				c.flat[base+slots&7] += (1 ^ m) - m
				base += 8
				slots >>= 3
				signBits >>= 1
			}
		}
		c.n += uint64(len(chunk))
	}
}

func (c *CountSketch) countWeight(weight int64) {
	if weight >= 0 {
		c.n += uint64(weight)
	} else {
		c.n += uint64(-weight)
	}
}

// Estimate returns the unbiased point-query estimate (median over rows
// of sign-corrected counters). Unlike Count-Min it can under- as well
// as overestimate.
func (c *CountSketch) Estimate(item []byte) int64 {
	return c.estimateHash(hashx.XXHash64(item, c.seed))
}

// EstimateUint64 returns the point-query estimate for an integer item.
func (c *CountSketch) EstimateUint64(item uint64) int64 {
	return c.estimateHash(hashx.HashUint64(item, c.seed))
}

func (c *CountSketch) estimateHash(h uint64) int64 {
	if c.fused {
		return c.estimateFused(h)
	}
	if !c.kwise {
		return c.estimateDerived(h)
	}
	ests := make([]int64, len(c.counts))
	for r := range c.counts {
		j := c.bucket[r].HashRange(h, c.width)
		ests[r] = c.sign[r].Sign(h) * c.counts[r][j]
	}
	return int64(core.MedianInt64(ests))
}

func (c *CountSketch) estimateDerived(h uint64) int64 {
	ests := make([]int64, len(c.counts))
	h2 := hashx.DeriveH2(h)
	signBits := hashx.Mix64(h2)
	w := uint64(c.width)
	x := h
	for r := range c.counts {
		v := c.counts[r][hashx.FastRange(x, w)]
		m := -int64(signBits >> uint(r) & 1)
		ests[r] = (v ^ m) - m
		x += h2
	}
	return int64(core.MedianInt64(ests))
}

// F2Estimate returns the median over rows of the squared row norms —
// an estimate of the second frequency moment ‖f‖₂², equivalent to the
// AMS tug-of-war estimate with the hashing speedup.
func (c *CountSketch) F2Estimate() float64 {
	norms := make([]float64, c.depth)
	if c.fused {
		stride := uint64(c.depth) * 8
		for r := 0; r < c.depth; r++ {
			var s float64
			for base := uint64(r) * 8; base < uint64(len(c.flat)); base += stride {
				for j := uint64(0); j < 8; j++ {
					v := float64(c.flat[base+j])
					s += v * v
				}
			}
			norms[r] = s
		}
		return core.Median(norms)
	}
	for r := range c.counts {
		var s float64
		for _, v := range c.counts[r] {
			s += float64(v) * float64(v)
		}
		norms[r] = s
	}
	return core.Median(norms)
}

// N returns the total absolute weight added.
func (c *CountSketch) N() uint64 { return c.n }

// Width returns the sketch width.
func (c *CountSketch) Width() int { return c.width }

// Depth returns the sketch depth.
func (c *CountSketch) Depth() int { return c.depth }

// ErrorBoundL2 returns the per-query additive error scale ‖f‖₂/√width
// implied by the sketch's own F2 estimate.
func (c *CountSketch) ErrorBoundL2() float64 {
	return math.Sqrt(c.F2Estimate() / float64(c.width))
}

// SizeBytes returns the counter storage size.
func (c *CountSketch) SizeBytes() int { return c.depth * c.width * 8 }

// Derived reports whether buckets and signs come from the
// double-hashing fast lane (true, the default) or per-row KWise
// polynomials.
func (c *CountSketch) Derived() bool { return !c.kwise }

// Fused reports whether counters live in the cache-line-interleaved
// fused layout. Fused and standard sketches address different cells
// and are not mergeable with each other.
func (c *CountSketch) Fused() bool { return c.fused }

// Merge adds another sketch's counters cell-wise (the structure is
// linear, so this is exact).
func (c *CountSketch) Merge(other *CountSketch) error {
	if c.width != other.width || c.depth != other.depth || c.seed != other.seed ||
		c.kwise != other.kwise || c.fused != other.fused {
		return fmt.Errorf("%w: count-sketch shape mismatch", core.ErrIncompatible)
	}
	if c.fused {
		for i, v := range other.flat {
			c.flat[i] += v
		}
	} else {
		for r := range c.counts {
			for j := range c.counts[r] {
				c.counts[r][j] += other.counts[r][j]
			}
		}
	}
	c.n += other.n
	return nil
}

// MarshalBinary serializes the sketch. Version 3 extends the version-2
// row-hash byte into a mode byte (0 derived, 1 kwise, 2 fused); fused
// payloads carry one flat slice in the fused cell order instead of
// per-row slices. Version-1 payloads decode as KWise-mode sketches.
func (c *CountSketch) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagCountSketch, 3)
	w.U32(uint32(c.width))
	w.U32(uint32(c.depth))
	w.U64(c.seed)
	w.U64(c.n)
	switch {
	case c.fused:
		w.U8(cmModeFused)
		w.I64Slice(c.flat)
	case c.kwise:
		w.U8(cmModeKWise)
		for _, row := range c.counts {
			w.I64Slice(row)
		}
	default:
		w.U8(cmModeDerived)
		for _, row := range c.counts {
			w.I64Slice(row)
		}
	}
	return w.Bytes(), nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary. As
// with Count-Min, the mode byte is validated against the version that
// wrote it: version 2 predates the fused layout, so a version-2
// envelope carrying the fused mode byte is rejected rather than
// misparsed.
func (c *CountSketch) UnmarshalBinary(data []byte) error {
	r, version, err := core.NewReaderVersioned(data, core.TagCountSketch, 3)
	if err != nil {
		return err
	}
	width := int(r.U32())
	depth := int(r.U32())
	seed := r.U64()
	n := r.U64()
	mode := cmModeKWise // every version-1 writer used KWise rows
	if version >= 2 {
		mode = r.U8()
	}
	if r.Err() != nil {
		return r.Err()
	}
	if version == 2 && mode > cmModeKWise {
		return fmt.Errorf("%w: count-sketch mode byte %d in a version-2 envelope (fused layouts are version 3)", core.ErrCorrupt, mode)
	}
	if mode > cmModeFused {
		return fmt.Errorf("%w: count-sketch mode byte %d", core.ErrCorrupt, mode)
	}
	if mode == cmModeFused {
		// Depth must be odd: the constructor only ever produces odd
		// depths, and an even value would be silently re-rounded,
		// detaching the decoded shape from the payload.
		if width < 1 || width%8 != 0 || depth < 1 || depth > fusedMaxDepth || depth%2 == 0 {
			return fmt.Errorf("%w: fused count-sketch dims %dx%d", core.ErrCorrupt, width, depth)
		}
		flat := r.I64Slice()
		if len(flat) != width*depth {
			return fmt.Errorf("%w: fused count-sketch payload %d cells for %dx%d", core.ErrCorrupt, len(flat), width, depth)
		}
		if err := r.Done(); err != nil {
			return err
		}
		fresh := NewCountSketchFused(width, depth, seed)
		fresh.flat = flat
		fresh.n = n
		*c = *fresh
		return nil
	}
	// KWise payloads (including all version-1 ones) may carry up to the
	// historical depth 65; derived payloads are capped at 63 so every
	// row reads a distinct bit of the single 64-bit sign word.
	kwise := mode == cmModeKWise
	if width < 1 || depth < 1 || depth > 65 || (!kwise && depth > 63) {
		return fmt.Errorf("%w: count-sketch dims %dx%d", core.ErrCorrupt, width, depth)
	}
	counts := make([][]int64, depth)
	for i := range counts {
		counts[i] = r.I64Slice()
		if len(counts[i]) != width {
			return fmt.Errorf("%w: count-sketch row %d length", core.ErrCorrupt, i)
		}
	}
	if err := r.Done(); err != nil {
		return err
	}
	// KWise hash rows rebuild from the seed; depth may have been rounded
	// odd at construction, so rebuild with the serialized depth directly.
	var bucket, sign []*hashx.KWise
	if kwise {
		bucket, sign = newCountSketchRows(seed, depth)
	}
	c.width, c.depth, c.seed, c.n = width, depth, seed, n
	c.counts, c.bucket, c.sign, c.kwise = counts, bucket, sign, kwise
	c.flat, c.blocks, c.fused = nil, 0, false
	return nil
}
