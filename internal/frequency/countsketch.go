package frequency

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/hashx"
)

// CountSketch is the Charikar–Chen–Farach-Colton sketch: like Count-Min
// but each update is multiplied by a ±1 (Rademacher) sign hash, and the
// point query takes the median over rows of signed counters. Estimates
// are unbiased with additive error O(ε‖f‖₂) — the L2 guarantee that
// beats Count-Min's L1 bound on skewed data (experiment E4). The same
// structure later became the basis of sparse Johnson–Lindenstrauss
// transforms and of the FetchSGD gradient compressor (internal/jl,
// internal/fetchsgd).
type CountSketch struct {
	counts [][]int64
	bucket []*hashx.KWise // 2-wise bucket hashes, one per row
	sign   []*hashx.KWise // 4-wise sign hashes, one per row
	width  int
	seed   uint64
	n      uint64
}

// NewCountSketch creates a width×depth Count Sketch. Depth should be
// odd so the median is unambiguous; even depths are raised by one.
func NewCountSketch(width, depth int, seed uint64) *CountSketch {
	if width < 1 || depth < 1 {
		panic("frequency: CountSketch dimensions must be positive")
	}
	if depth%2 == 0 {
		depth++
	}
	counts := make([][]int64, depth)
	for i := range counts {
		counts[i] = make([]int64, width)
	}
	seeds := hashx.SeedSequence(seed, 2*depth)
	bucket := make([]*hashx.KWise, depth)
	sign := make([]*hashx.KWise, depth)
	for i := 0; i < depth; i++ {
		bucket[i] = hashx.NewKWise(2, seeds[2*i])
		sign[i] = hashx.NewKWise(4, seeds[2*i+1])
	}
	return &CountSketch{counts: counts, bucket: bucket, sign: sign, width: width, seed: seed}
}

// Add adds weight (may be negative: turnstile streams are supported) to
// the count of item.
func (c *CountSketch) Add(item []byte, weight int64) {
	c.AddHash(hashx.XXHash64(item, c.seed), weight)
}

// AddUint64 adds weight to an integer item's count.
func (c *CountSketch) AddUint64(item uint64, weight int64) {
	c.AddHash(hashx.HashUint64(item, c.seed), weight)
}

// Update implements core.Updater (weight 1).
func (c *CountSketch) Update(item []byte) { c.Add(item, 1) }

// AddHash folds a pre-hashed item into the sketch.
func (c *CountSketch) AddHash(h uint64, weight int64) {
	for r := range c.counts {
		j := c.bucket[r].HashRange(h, c.width)
		c.counts[r][j] += c.sign[r].Sign(h) * weight
	}
	if weight >= 0 {
		c.n += uint64(weight)
	} else {
		c.n += uint64(-weight)
	}
}

// Estimate returns the unbiased point-query estimate (median over rows
// of sign-corrected counters). Unlike Count-Min it can under- as well
// as overestimate.
func (c *CountSketch) Estimate(item []byte) int64 {
	return c.estimateHash(hashx.XXHash64(item, c.seed))
}

// EstimateUint64 returns the point-query estimate for an integer item.
func (c *CountSketch) EstimateUint64(item uint64) int64 {
	return c.estimateHash(hashx.HashUint64(item, c.seed))
}

func (c *CountSketch) estimateHash(h uint64) int64 {
	ests := make([]int64, len(c.counts))
	for r := range c.counts {
		j := c.bucket[r].HashRange(h, c.width)
		ests[r] = c.sign[r].Sign(h) * c.counts[r][j]
	}
	return int64(core.MedianInt64(ests))
}

// F2Estimate returns the median over rows of the squared row norms —
// an estimate of the second frequency moment ‖f‖₂², equivalent to the
// AMS tug-of-war estimate with the hashing speedup.
func (c *CountSketch) F2Estimate() float64 {
	norms := make([]float64, len(c.counts))
	for r := range c.counts {
		var s float64
		for _, v := range c.counts[r] {
			s += float64(v) * float64(v)
		}
		norms[r] = s
	}
	return core.Median(norms)
}

// N returns the total absolute weight added.
func (c *CountSketch) N() uint64 { return c.n }

// Width returns the sketch width.
func (c *CountSketch) Width() int { return c.width }

// Depth returns the sketch depth.
func (c *CountSketch) Depth() int { return len(c.counts) }

// ErrorBoundL2 returns the per-query additive error scale ‖f‖₂/√width
// implied by the sketch's own F2 estimate.
func (c *CountSketch) ErrorBoundL2() float64 {
	return math.Sqrt(c.F2Estimate() / float64(c.width))
}

// SizeBytes returns the counter storage size.
func (c *CountSketch) SizeBytes() int { return len(c.counts) * c.width * 8 }

// Merge adds another sketch's counters cell-wise (the structure is
// linear, so this is exact).
func (c *CountSketch) Merge(other *CountSketch) error {
	if c.width != other.width || len(c.counts) != len(other.counts) || c.seed != other.seed {
		return fmt.Errorf("%w: count-sketch shape mismatch", core.ErrIncompatible)
	}
	for r := range c.counts {
		for j := range c.counts[r] {
			c.counts[r][j] += other.counts[r][j]
		}
	}
	c.n += other.n
	return nil
}

// MarshalBinary serializes the sketch.
func (c *CountSketch) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagCountSketch, 1)
	w.U32(uint32(c.width))
	w.U32(uint32(len(c.counts)))
	w.U64(c.seed)
	w.U64(c.n)
	for _, row := range c.counts {
		w.I64Slice(row)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary.
func (c *CountSketch) UnmarshalBinary(data []byte) error {
	r, _, err := core.NewReader(data, core.TagCountSketch)
	if err != nil {
		return err
	}
	width := int(r.U32())
	depth := int(r.U32())
	seed := r.U64()
	n := r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	if width < 1 || depth < 1 || depth > 65 {
		return fmt.Errorf("%w: count-sketch dims %dx%d", core.ErrCorrupt, width, depth)
	}
	counts := make([][]int64, depth)
	for i := range counts {
		counts[i] = r.I64Slice()
		if len(counts[i]) != width {
			return fmt.Errorf("%w: count-sketch row %d length", core.ErrCorrupt, i)
		}
	}
	if err := r.Done(); err != nil {
		return err
	}
	// Rebuild hash rows from the seed; depth may have been rounded odd
	// at construction, so rebuild with the serialized depth directly.
	seeds := hashx.SeedSequence(seed, 2*depth)
	bucket := make([]*hashx.KWise, depth)
	sign := make([]*hashx.KWise, depth)
	for i := 0; i < depth; i++ {
		bucket[i] = hashx.NewKWise(2, seeds[2*i])
		sign[i] = hashx.NewKWise(4, seeds[2*i+1])
	}
	c.width, c.seed, c.n, c.counts, c.bucket, c.sign = width, seed, n, counts, bucket, sign
	return nil
}
