package frequency

// Tests for the fused cache-line layouts: the interleaved counters are
// a memory-placement change only, so overestimate guarantees, batch
// equivalence and wire round trips must all hold exactly as in the
// standard row layout — and the two layouts must never merge or decode
// into each other.

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/hashx"
)

func TestCountMinFusedOverestimates(t *testing.T) {
	// Count-Min's one-sided error is layout-independent: every estimate
	// must be >= the true count, and exact counts must survive when
	// collisions are unlikely.
	cm := NewCountMinFused(4096, 5, 1)
	truth := map[uint64]uint64{}
	for i := uint64(0); i < 2000; i++ {
		w := i%7 + 1
		cm.AddUint64(i, w)
		truth[i] += w
	}
	for item, want := range truth {
		if got := cm.EstimateUint64(item); got < want {
			t.Fatalf("fused estimate(%d) = %d underestimates true count %d", item, got, want)
		}
	}
	if cm.N() != cm.n {
		t.Fatal("N() accessor broken")
	}
}

func TestCountMinFusedBatchMatchesSequential(t *testing.T) {
	seq := NewCountMinFused(2048, 5, 3)
	bat := NewCountMinFused(2048, 5, 3)
	hs := make([]uint64, 1000) // spans multiple ingestChunk chunks
	for i := range hs {
		hs[i] = hashx.HashUint64(uint64(i), 3)
		seq.AddHash(hs[i], 1)
	}
	bat.AddHashBatch(hs)
	a, _ := seq.MarshalBinary()
	b, _ := bat.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("fused AddHashBatch state differs from scalar AddHash")
	}
}

func TestCountSketchFusedBatchMatchesSequential(t *testing.T) {
	seq := NewCountSketchFused(2048, 5, 3)
	bat := NewCountSketchFused(2048, 5, 3)
	hs := make([]uint64, 1000)
	for i := range hs {
		hs[i] = hashx.HashUint64(uint64(i), 3)
		seq.AddHash(hs[i], 1)
	}
	bat.AddHashBatch(hs)
	a, _ := seq.MarshalBinary()
	b, _ := bat.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("fused AddHashBatch state differs from scalar AddHash")
	}
}

func TestCountMinFusedRoundTripAndMergeGuard(t *testing.T) {
	fused := NewCountMinFused(512, 5, 5)
	std := NewCountMin(512, 5, 5)
	for i := uint64(0); i < 1000; i++ {
		fused.AddUint64(i%100, 1)
		std.AddUint64(i%100, 1)
	}
	data, err := fused.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back CountMin
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !back.Fused() {
		t.Fatal("round trip dropped the fused layout")
	}
	round, _ := back.MarshalBinary()
	if !bytes.Equal(round, data) {
		t.Fatal("Marshal -> Decode -> Marshal is not byte-identical")
	}
	for i := uint64(0); i < 100; i++ {
		if got, want := back.EstimateUint64(i), fused.EstimateUint64(i); got != want {
			t.Fatalf("decoded estimate(%d) = %d, want %d", i, got, want)
		}
	}
	// Fused and standard sketches address different cells: merging them
	// would silently corrupt counts, so the shape check must refuse.
	if err := fused.Merge(std); !errors.Is(err, core.ErrIncompatible) {
		t.Fatalf("Merge(fused, standard) = %v, want ErrIncompatible", err)
	}
	if err := std.Merge(fused); !errors.Is(err, core.ErrIncompatible) {
		t.Fatalf("Merge(standard, fused) = %v, want ErrIncompatible", err)
	}
	// Same-shape fused sketches merge by counter addition.
	clone := NewCountMinFused(512, 5, 5)
	if err := clone.Merge(fused); err != nil {
		t.Fatal(err)
	}
	cm, _ := clone.MarshalBinary()
	if !bytes.Equal(cm, data) {
		t.Fatal("merge into empty fused sketch differs from original")
	}
}

func TestCountSketchFusedRoundTripAndMergeGuard(t *testing.T) {
	fused := NewCountSketchFused(512, 5, 5)
	std := NewCountSketch(512, 5, 5)
	for i := uint64(0); i < 1000; i++ {
		fused.AddUint64(i%100, 1)
		std.AddUint64(i%100, 1)
	}
	data, err := fused.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back CountSketch
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !back.Fused() {
		t.Fatal("round trip dropped the fused layout")
	}
	round, _ := back.MarshalBinary()
	if !bytes.Equal(round, data) {
		t.Fatal("Marshal -> Decode -> Marshal is not byte-identical")
	}
	for i := uint64(0); i < 100; i++ {
		if got, want := back.EstimateUint64(i), fused.EstimateUint64(i); got != want {
			t.Fatalf("decoded estimate(%d) = %d, want %d", i, got, want)
		}
	}
	if err := fused.Merge(std); !errors.Is(err, core.ErrIncompatible) {
		t.Fatalf("Merge(fused, standard) = %v, want ErrIncompatible", err)
	}
	if err := std.Merge(fused); !errors.Is(err, core.ErrIncompatible) {
		t.Fatalf("Merge(standard, fused) = %v, want ErrIncompatible", err)
	}
}

// writeCountMinV2WithMode hand-writes a version-2 Count-Min envelope
// carrying an arbitrary mode byte. Version-2 writers never produced
// mode 2, so a fused byte in a v2 envelope is corrupt by construction.
func writeCountMinV2WithMode(mode byte) []byte {
	w := core.NewWriter(core.TagCountMin, 2)
	w.U32(64) // width
	w.U32(4)  // depth
	w.U64(1)  // seed
	w.U64(0)  // n
	w.U8(0)   // conservative
	w.U8(mode)
	for i := 0; i < 4; i++ {
		w.U64Slice(make([]uint64, 64))
	}
	return w.Bytes()
}

func TestCountMinV2FusedModeByteRejected(t *testing.T) {
	var cm CountMin
	if err := cm.UnmarshalBinary(writeCountMinV2WithMode(cmModeFused)); !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("v2 envelope with fused mode byte: err = %v, want ErrCorrupt", err)
	}
	// Sanity: the same envelope with a legal v2 mode byte decodes.
	if err := cm.UnmarshalBinary(writeCountMinV2WithMode(cmModeDerived)); err != nil {
		t.Fatalf("legal v2 envelope rejected: %v", err)
	}
}

func TestCountSketchV2FusedModeByteRejected(t *testing.T) {
	write := func(mode byte) []byte {
		w := core.NewWriter(core.TagCountSketch, 2)
		w.U32(64) // width
		w.U32(3)  // depth
		w.U64(1)  // seed
		w.U64(0)  // n
		w.U8(mode)
		for i := 0; i < 3; i++ {
			w.I64Slice(make([]int64, 64))
		}
		return w.Bytes()
	}
	var cs CountSketch
	if err := cs.UnmarshalBinary(write(cmModeFused)); !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("v2 envelope with fused mode byte: err = %v, want ErrCorrupt", err)
	}
	if err := cs.UnmarshalBinary(write(cmModeDerived)); err != nil {
		t.Fatalf("legal v2 envelope rejected: %v", err)
	}
}

func TestFusedDecodeRejectsBadDims(t *testing.T) {
	writeFusedCM := func(width, depth uint32, cells int) []byte {
		w := core.NewWriter(core.TagCountMin, 3)
		w.U32(width)
		w.U32(depth)
		w.U64(1)
		w.U64(0)
		w.U8(0) // conservative
		w.U8(cmModeFused)
		w.U64Slice(make([]uint64, cells))
		return w.Bytes()
	}
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"width not multiple of 8", writeFusedCM(60, 5, 300)},
		{"depth over fused cap", writeFusedCM(64, 22, 64*22)},
		{"cell count mismatch", writeFusedCM(64, 5, 64*5-1)},
	} {
		var cm CountMin
		if err := cm.UnmarshalBinary(tc.data); !errors.Is(err, core.ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", tc.name, err)
		}
	}
	// Fused Count-Sketch additionally requires odd depth: the
	// constructor only produces odd depths, and silently re-rounding an
	// even payload would detach the decoded shape from the bytes.
	writeFusedCS := func(depth uint32) []byte {
		w := core.NewWriter(core.TagCountSketch, 3)
		w.U32(64)
		w.U32(depth)
		w.U64(1)
		w.U64(0)
		w.U8(cmModeFused)
		w.I64Slice(make([]int64, 64*int(depth)))
		return w.Bytes()
	}
	var cs CountSketch
	if err := cs.UnmarshalBinary(writeFusedCS(4)); !errors.Is(err, core.ErrCorrupt) {
		t.Errorf("even fused count-sketch depth: err = %v, want ErrCorrupt", err)
	}
	if err := cs.UnmarshalBinary(writeFusedCS(5)); err != nil {
		t.Errorf("legal fused count-sketch rejected: %v", err)
	}
}

func TestCountMinFusedConservative(t *testing.T) {
	// Conservative update in the fused layout: still an overestimate,
	// never larger than the plain fused estimate.
	plain := NewCountMinFused(1024, 5, 2)
	cons := NewCountMinFused(1024, 5, 2)
	cons.SetConservative(true)
	truth := map[uint64]uint64{}
	for i := uint64(0); i < 3000; i++ {
		item := i % 300
		plain.AddUint64(item, 1)
		cons.AddUint64(item, 1)
		truth[item]++
	}
	for item, want := range truth {
		p, c := plain.EstimateUint64(item), cons.EstimateUint64(item)
		if c < want {
			t.Fatalf("conservative fused estimate(%d) = %d underestimates %d", item, c, want)
		}
		if c > p {
			t.Fatalf("conservative fused estimate(%d) = %d exceeds plain %d", item, c, p)
		}
	}
}
