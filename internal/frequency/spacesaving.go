package frequency

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/core"
)

// SpaceSaving is the Metwally–Agrawal–El Abbadi frequent-items summary
// (2005): maintain k counters; a new item evicts the current minimum
// counter and inherits its count plus one, recording that inherited
// count as the estimate's maximum overcount. Estimates never
// undercount by more than zero and overcount by at most N/k; the paper
// later notes SpaceSaving was shown to be isomorphic to Misra–Gries —
// experiment E5 confirms their recall/precision match. The counter set
// is kept in a min-heap for O(log k) updates.
type SpaceSaving struct {
	k     int
	n     uint64
	items map[string]*ssEntry
	heap  ssHeap
}

type ssEntry struct {
	item  string
	count uint64
	err   uint64 // maximum overcount inherited at insertion
	index int
}

type ssHeap []*ssEntry

func (h ssHeap) Len() int           { return len(h) }
func (h ssHeap) Less(i, j int) bool { return h[i].count < h[j].count }
func (h ssHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *ssHeap) Push(x any)        { e := x.(*ssEntry); e.index = len(*h); *h = append(*h, e) }
func (h *ssHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// NewSpaceSaving creates a summary with k counters; items with true
// frequency above N/k are guaranteed to be present.
func NewSpaceSaving(k int) *SpaceSaving {
	if k < 1 {
		panic("frequency: SpaceSaving requires k >= 1")
	}
	return &SpaceSaving{k: k, items: make(map[string]*ssEntry, k)}
}

// Add registers weight occurrences of item.
func (s *SpaceSaving) Add(item string, weight uint64) {
	s.n += weight
	if e, ok := s.items[item]; ok {
		e.count += weight
		heap.Fix(&s.heap, e.index)
		return
	}
	if len(s.heap) < s.k {
		e := &ssEntry{item: item, count: weight}
		heap.Push(&s.heap, e)
		s.items[item] = e
		return
	}
	// Evict the minimum: the newcomer inherits its count as error.
	min := s.heap[0]
	delete(s.items, min.item)
	inherited := min.count
	min.item = item
	min.count = inherited + weight
	min.err = inherited
	heap.Fix(&s.heap, 0)
	s.items[item] = min
}

// AddString registers one occurrence of item.
func (s *SpaceSaving) AddString(item string) { s.Add(item, 1) }

// Update implements core.Updater.
func (s *SpaceSaving) Update(item []byte) { s.Add(string(item), 1) }

// Estimate returns the tracked count (an overestimate by at most the
// recorded error), or 0 for untracked items.
func (s *SpaceSaving) Estimate(item string) uint64 {
	if e, ok := s.items[item]; ok {
		return e.count
	}
	return 0
}

// GuaranteedCount returns the provable lower bound count − err for a
// tracked item.
func (s *SpaceSaving) GuaranteedCount(item string) uint64 {
	if e, ok := s.items[item]; ok {
		return e.count - e.err
	}
	return 0
}

// N returns the total weight processed.
func (s *SpaceSaving) N() uint64 { return s.n }

// K returns the counter budget.
func (s *SpaceSaving) K() int { return s.k }

// ErrorBound returns the maximum overcount N/k.
func (s *SpaceSaving) ErrorBound() uint64 { return s.n / uint64(s.k) }

// HeavyHitters returns items whose estimate reaches threshold·N,
// sorted by descending estimate. Contains every item with true
// frequency ≥ threshold·N.
func (s *SpaceSaving) HeavyHitters(threshold float64) []Entry {
	cut := uint64(threshold * float64(s.n))
	var out []Entry
	for _, e := range s.heap {
		if e.count >= cut && cut > 0 {
			out = append(out, Entry{Item: e.item, Count: e.count})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// Entries returns all tracked items sorted by descending estimate.
func (s *SpaceSaving) Entries() []Entry {
	out := make([]Entry, 0, len(s.heap))
	for _, e := range s.heap {
		out = append(out, Entry{Item: e.item, Count: e.count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// Merge combines another SpaceSaving summary with the same k: counts
// (and error bounds) of shared items add; the union is then pruned back
// to the k largest counters. The merged error bounds remain valid
// (Agarwal et al. 2013).
func (s *SpaceSaving) Merge(other *SpaceSaving) error {
	if s.k != other.k {
		return fmt.Errorf("%w: space-saving k=%d vs k=%d", core.ErrIncompatible, s.k, other.k)
	}
	type pair struct{ count, err uint64 }
	merged := make(map[string]pair, len(s.heap)+len(other.heap))
	for _, e := range s.heap {
		merged[e.item] = pair{e.count, e.err}
	}
	// Items absent from one summary could still have occurred up to
	// that summary's minimum count; absorb that into the error bound.
	var minS, minO uint64
	if len(s.heap) == s.k {
		minS = s.heap[0].count
	}
	if len(other.heap) == other.k {
		minO = other.heap[0].count
	}
	for _, e := range other.heap {
		if p, ok := merged[e.item]; ok {
			merged[e.item] = pair{p.count + e.count, p.err + e.err}
		} else {
			merged[e.item] = pair{e.count + minS, e.err + minS}
		}
	}
	for _, e := range s.heap {
		if _, ok := other.items[e.item]; !ok {
			p := merged[e.item]
			merged[e.item] = pair{p.count + minO, p.err + minO}
		}
	}
	// Keep the k largest.
	type rec struct {
		item string
		pair
	}
	all := make([]rec, 0, len(merged))
	for it, p := range merged {
		all = append(all, rec{it, p})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].item < all[j].item
	})
	if len(all) > s.k {
		all = all[:s.k]
	}
	s.items = make(map[string]*ssEntry, s.k)
	s.heap = s.heap[:0]
	for _, r := range all {
		e := &ssEntry{item: r.item, count: r.count, err: r.err}
		heap.Push(&s.heap, e)
		s.items[r.item] = e
	}
	s.n += other.n
	return nil
}

// MarshalBinary serializes the summary.
func (s *SpaceSaving) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagSpaceSaving, 1)
	w.U32(uint32(s.k))
	w.U64(s.n)
	w.U32(uint32(len(s.heap)))
	for _, e := range s.heap {
		w.BytesField([]byte(e.item))
		w.U64(e.count)
		w.U64(e.err)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary restores a summary serialized by MarshalBinary.
func (s *SpaceSaving) UnmarshalBinary(data []byte) error {
	r, _, err := core.NewReader(data, core.TagSpaceSaving)
	if err != nil {
		return err
	}
	k := int(r.U32())
	n := r.U64()
	cnt := r.Count(20) // len-prefixed item (≥4 bytes) + 2 × U64
	if r.Err() != nil {
		return r.Err()
	}
	if k < 1 || cnt > k {
		return fmt.Errorf("%w: space-saving k=%d entries=%d", core.ErrCorrupt, k, cnt)
	}
	// Size the map by the serialized entry count, not by k: k is an
	// untrusted capacity that only bounds future growth.
	fresh := &SpaceSaving{k: k, items: make(map[string]*ssEntry, cnt)}
	fresh.n = n
	for i := 0; i < cnt; i++ {
		item := string(r.BytesField())
		count := r.U64()
		errv := r.U64()
		e := &ssEntry{item: item, count: count, err: errv}
		heap.Push(&fresh.heap, e)
		fresh.items[item] = e
	}
	if err := r.Done(); err != nil {
		return err
	}
	*s = *fresh
	return nil
}
