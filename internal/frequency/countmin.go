// Package frequency implements the frequency-estimation and heavy-
// hitter sketches the paper traces: Boyer–Moore majority (1981),
// Misra–Gries (1982), the Count sketch (Charikar–Chen–Farach-Colton
// 2002), the Count-Min sketch (Cormode–Muthukrishnan 2005) with
// conservative update and dyadic range queries, and SpaceSaving
// (Metwally et al. 2005).
//
// Count-Min answers point queries with additive error ε‖f‖₁ (an L1
// guarantee); Count Sketch achieves additive error ε‖f‖₂ (an L2
// guarantee), which is stronger on skewed data — experiment E4
// reproduces that crossover. The deterministic counter-based summaries
// (Misra–Gries, SpaceSaving) solve heavy hitters with ε‖f‖₁ error in
// k = 1/ε counters and merge per Mergeable Summaries (experiments E5,
// E7).
package frequency

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/hashx"
)

// CountMin is the Count-Min sketch: a depth×width grid of counters;
// each item increments one counter per row (chosen by that row's hash),
// and a point query returns the minimum over rows. Estimates never
// undercount; with width e/ε and depth ln(1/δ) the overcount is at most
// ε·N with probability 1−δ.
type CountMin struct {
	counts       [][]uint64
	flat         []uint64       // fused mode: blocks × depth × 8 interleaved counters
	rows         []*hashx.KWise // nil in derived mode; the KWise slow path otherwise
	width        int
	depth        int
	blocks       uint64 // fused mode: 8-counter blocks per row (width/8)
	seed         uint64
	n            uint64 // total updates (weight), for error accounting
	conservative bool
	kwise        bool // row positions from per-row KWise polynomials instead of double hashing
	fused        bool // counters in the cache-line-interleaved fused layout
}

// ingestChunk is the chunk size of the two-phase batch loops (see
// AddHashBatch): per-item staging arrays of this length stay on the
// stack while giving the memory system long runs of independent
// accesses to overlap.
const ingestChunk = 256

// fusedMaxDepth caps fused-layout depth: each row's in-block slot is a
// 3-bit chunk of one 64-bit slot word, so 21 rows exhaust it. (The same
// single-word discipline caps derived Count-Sketch signs at 63.) Real
// configurations use depth = O(log 1/δ) ≲ 30, and fused exists for
// wide-and-shallow shapes where memory, not hashing, dominates.
const fusedMaxDepth = 21

// NewCountMin creates a width×depth Count-Min sketch. Row positions
// derive from a single 64-bit hash h of the item by double hashing
// (j_r = h + r·DeriveH2(h) reduced into [0, width)), so an update costs
// one hash pass plus depth multiply-adds — the hash-once discipline
// that "An Evaluation of Software Sketches" (Friedman) identifies as
// the dominant software optimization for this family. NewCountMinKWise
// keeps the provably pairwise-independent per-row polynomials.
func NewCountMin(width, depth int, seed uint64) *CountMin {
	if width < 1 || depth < 1 {
		panic("frequency: CountMin dimensions must be positive")
	}
	counts := make([][]uint64, depth)
	for i := range counts {
		counts[i] = make([]uint64, width)
	}
	return &CountMin{counts: counts, width: width, depth: depth, seed: seed}
}

// NewCountMinFused creates a sketch in the fused cache-line layout: the
// depth counters an item touches live in depth *adjacent* 512-bit
// blocks instead of depth distant rows. The item's hash picks one
// block column (FastRange over width/8 columns) and a 3-bit slot per
// row from a remixed slot word, so an update's memory traffic is depth
// consecutive cache lines — a hardware-prefetchable stream — rather
// than depth scattered ones. Width is rounded up to a multiple of 8
// (one cache line of counters); depth is capped at 21 (3 slot bits per
// row from one 64-bit word).
//
// Accuracy: a cell collision still needs both the block column and the
// row's slot to match (probability 1/width per row, as in the standard
// layout), but collisions across rows are correlated through the
// shared column — two items in the same column collide wherever their
// slot words agree. E28 measures the estimate-error cost next to the
// speedup. Fused and standard sketches address different cells and do
// not merge with each other.
func NewCountMinFused(width, depth int, seed uint64) *CountMin {
	if width < 1 || depth < 1 {
		panic("frequency: CountMin dimensions must be positive")
	}
	if depth > fusedMaxDepth {
		panic("frequency: fused CountMin depth must be <= 21 (3 slot bits per row from a 64-bit word)")
	}
	width = (width + 7) &^ 7
	return &CountMin{
		flat:   make([]uint64, width*depth),
		width:  width,
		depth:  depth,
		blocks: uint64(width / 8),
		seed:   seed,
		fused:  true,
	}
}

// NewCountMinKWise creates a sketch whose row positions come from
// depth independent 2-wise polynomial hashes — the construction the
// formal Count-Min analysis assumes. It is the slow path (one field
// multiplication and one division per row); the estimate-compatibility
// tests use it as the reference the derived fast lane is judged
// against.
func NewCountMinKWise(width, depth int, seed uint64) *CountMin {
	c := NewCountMin(width, depth, seed)
	c.kwise = true
	c.rows = newKWiseRows(seed, depth)
	return c
}

// newKWiseRows derives the per-row 2-wise hash functions every
// KWise-mode sketch with the same (seed, depth) shares.
func newKWiseRows(seed uint64, depth int) []*hashx.KWise {
	rowSeeds := hashx.SeedSequence(seed, depth)
	rows := make([]*hashx.KWise, depth)
	for i := range rows {
		rows[i] = hashx.NewKWise(2, rowSeeds[i])
	}
	return rows
}

// NewCountMinWithSpec sizes the sketch from an (ε, δ) contract.
func NewCountMinWithSpec(spec core.Spec, seed uint64) (*CountMin, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	w, d := spec.CountMinShape()
	return NewCountMin(w, d, seed), nil
}

// SetConservative enables conservative update (Estan–Varghese): an
// update only raises the counters that are at the current minimum, to
// the minimum+weight. This never breaks the overestimate guarantee and
// substantially reduces error on skewed streams (ablation E4a). It must
// be chosen before any updates and makes the sketch non-mergeable.
func (c *CountMin) SetConservative(on bool) {
	if c.n > 0 {
		panic("frequency: SetConservative must be called before updates")
	}
	c.conservative = on
}

// Add increments the count of item by weight: one hash pass, all row
// positions derived from it. Add(item, w) is exactly equivalent to
// AddHash(hashx.XXHash64(item, seed), w) in both row-hash modes.
func (c *CountMin) Add(item []byte, weight uint64) {
	c.AddHash(hashx.XXHash64(item, c.seed), weight)
}

// AddUint64 increments an integer item's count by weight. Equivalent to
// AddHash(hashx.HashUint64(item, seed), weight).
func (c *CountMin) AddUint64(item, weight uint64) {
	c.AddHash(hashx.HashUint64(item, c.seed), weight)
}

// AddString increments a string item's count by one without copying or
// allocating. Equivalent to Add on the string's bytes.
func (c *CountMin) AddString(item string) {
	c.AddHash(hashx.XXHash64String(item, c.seed), 1)
}

// Update implements core.Updater (weight 1).
func (c *CountMin) Update(item []byte) { c.Add(item, 1) }

// AddHash folds a pre-hashed item into the sketch. Every entry point —
// Add, AddUint64, AddString and the estimate paths — routes through the
// same h, so pipelines that pre-hash with hashx.XXHash64 (or
// hashx.HashUint64 for integers) can freely mix AddHash writes with
// Estimate(item) reads. In derived mode the second double-hashing
// stream expands from h via hashx.DeriveH2; in KWise mode the row
// polynomials are evaluated on h directly.
func (c *CountMin) AddHash(h, weight uint64) {
	if c.fused {
		c.addHashFused(h, weight)
		return
	}
	if !c.kwise {
		c.addHashDerived(h, weight)
		return
	}
	if c.conservative {
		est := c.estimateHash(h)
		target := est + weight
		for r, row := range c.rows {
			j := row.HashRange(h, c.width)
			if c.counts[r][j] < target {
				c.counts[r][j] = target
			}
		}
	} else {
		for r, row := range c.rows {
			c.counts[r][row.HashRange(h, c.width)] += weight
		}
	}
	c.n += weight
}

// addHashDerived is the derived-mode fast lane: row r touches bucket
// FastRange(h + r·DeriveH2(h), width), so the whole update is depth
// multiply-adds on top of one hash.
func (c *CountMin) addHashDerived(h, weight uint64) {
	h2 := hashx.DeriveH2(h)
	w := uint64(c.width)
	if c.conservative {
		est := c.estimateDerived(h)
		target := est + weight
		x := h
		for r := range c.counts {
			j := hashx.FastRange(x, w)
			if c.counts[r][j] < target {
				c.counts[r][j] = target
			}
			x += h2
		}
	} else {
		x := h
		for r := range c.counts {
			c.counts[r][hashx.FastRange(x, w)] += weight
			x += h2
		}
	}
	c.n += weight
}

// fusedBase returns the flat index of row 0's cache line in the block
// column h selects, and the slot word whose 3-bit chunks pick each
// row's cell within its line. The slot word remixes DeriveH2(h) so slot
// bits never correlate with the forced-odd double-hashing stride.
func (c *CountMin) fusedBase(h uint64) (base, slots uint64) {
	return hashx.FastRange(h, c.blocks) * uint64(c.depth) * 8,
		hashx.Mix64(hashx.DeriveH2(h))
}

// addHashFused is the fused-layout fast lane: depth consecutive cache
// lines, one counter bumped per line.
func (c *CountMin) addHashFused(h, weight uint64) {
	base, slots := c.fusedBase(h)
	if c.conservative {
		target := c.estimateFused(h) + weight
		for r := 0; r < c.depth; r++ {
			if cell := base + slots&7; c.flat[cell] < target {
				c.flat[cell] = target
			}
			base += 8
			slots >>= 3
		}
	} else {
		for r := 0; r < c.depth; r++ {
			c.flat[base+slots&7] += weight
			base += 8
			slots >>= 3
		}
	}
	c.n += weight
}

func (c *CountMin) estimateFused(h uint64) uint64 {
	base, slots := c.fusedBase(h)
	est := uint64(math.MaxUint64)
	for r := 0; r < c.depth; r++ {
		if v := c.flat[base+slots&7]; v < est {
			est = v
		}
		base += 8
		slots >>= 3
	}
	return est
}

// AddBatch increments each item's count by one. Chunks are fully
// hashed (pure ALU) before any counter update (the memory stream), the
// same two-phase pipelined loop as AddHashBatch. Equivalent to
// Add(item, 1) per item; must not retain the item slices.
func (c *CountMin) AddBatch(items [][]byte) {
	var hs [ingestChunk]uint64
	for len(items) > 0 {
		n := len(items)
		if n > ingestChunk {
			n = ingestChunk
		}
		for i, item := range items[:n] {
			hs[i] = hashx.XXHash64(item, c.seed)
		}
		c.AddHashBatch(hs[:n])
		items = items[n:]
	}
}

// AddHashBatch folds many pre-hashed items in, each with weight 1. The
// resulting state is byte-identical to calling AddHash per item.
//
// In derived and fused modes (counter adds commute, so update order is
// free) the loop is two-phase over fixed-size chunks: phase 1 computes
// every item's addressing state with pure ALU work, phase 2 streams the
// counter updates, so consecutive items' cache misses overlap instead
// of each miss serializing behind the next item's hash math.
// Conservative and KWise modes fall back to the scalar loop
// (conservative updates read-then-write and are order-sensitive).
func (c *CountMin) AddHashBatch(hs []uint64) {
	if c.conservative || c.kwise {
		for _, h := range hs {
			c.AddHash(h, 1)
		}
		return
	}
	if c.fused {
		c.addHashBatchFused(hs)
		return
	}
	c.addHashBatchDerived(hs)
}

// addHashBatchDerived processes chunks row-by-row: the inner loop
// walks one row for the whole chunk, issuing up to ingestChunk
// independent read-modify-writes into the same row before moving on.
func (c *CountMin) addHashBatchDerived(hs []uint64) {
	var xs, h2s [ingestChunk]uint64
	w := uint64(c.width)
	for start := 0; start < len(hs); start += ingestChunk {
		end := start + ingestChunk
		if end > len(hs) {
			end = len(hs)
		}
		chunk := hs[start:end]
		for i, h := range chunk {
			xs[i] = h
			h2s[i] = hashx.DeriveH2(h)
		}
		for r := range c.counts {
			row := c.counts[r]
			for i := range chunk {
				row[hashx.FastRange(xs[i], w)]++
				xs[i] += h2s[i]
			}
		}
		c.n += uint64(len(chunk))
	}
}

// addHashBatchFused precomputes each chunk item's block base and slot
// word (phase 1), then streams the depth-line updates (phase 2).
func (c *CountMin) addHashBatchFused(hs []uint64) {
	var bases, slotws [ingestChunk]uint64
	for start := 0; start < len(hs); start += ingestChunk {
		end := start + ingestChunk
		if end > len(hs) {
			end = len(hs)
		}
		chunk := hs[start:end]
		for i, h := range chunk {
			bases[i], slotws[i] = c.fusedBase(h)
		}
		for i := range chunk {
			base, slots := bases[i], slotws[i]
			for r := 0; r < c.depth; r++ {
				c.flat[base+slots&7]++
				base += 8
				slots >>= 3
			}
		}
		c.n += uint64(len(chunk))
	}
}

// Estimate returns the point-query estimate for item: an overestimate
// of the true count by at most ε‖f‖₁ with probability 1−δ. It probes
// exactly the buckets Add touched for the same item.
func (c *CountMin) Estimate(item []byte) uint64 {
	return c.estimateHash(hashx.XXHash64(item, c.seed))
}

// EstimateUint64 returns the point-query estimate for an integer item.
func (c *CountMin) EstimateUint64(item uint64) uint64 {
	return c.estimateHash(hashx.HashUint64(item, c.seed))
}

// EstimateString returns the point-query estimate for a string item
// without copying or allocating.
func (c *CountMin) EstimateString(item string) uint64 {
	return c.estimateHash(hashx.XXHash64String(item, c.seed))
}

func (c *CountMin) estimateHash(h uint64) uint64 {
	if c.fused {
		return c.estimateFused(h)
	}
	if !c.kwise {
		return c.estimateDerived(h)
	}
	est := uint64(math.MaxUint64)
	for r, row := range c.rows {
		if v := c.counts[r][row.HashRange(h, c.width)]; v < est {
			est = v
		}
	}
	return est
}

func (c *CountMin) estimateDerived(h uint64) uint64 {
	h2 := hashx.DeriveH2(h)
	w := uint64(c.width)
	est := uint64(math.MaxUint64)
	x := h
	for r := range c.counts {
		if v := c.counts[r][hashx.FastRange(x, w)]; v < est {
			est = v
		}
		x += h2
	}
	return est
}

// EstimatePerRow exposes each row's counter value and bucket index for
// an item. Wrappers that post-process counters (the differentially
// private sketch in internal/privacy adds per-counter noise) need the
// per-row view rather than the final minimum.
func (c *CountMin) EstimatePerRow(item []byte) (counts []uint64, buckets []int) {
	depth := c.depth
	counts = make([]uint64, depth)
	buckets = make([]int, depth)
	h := hashx.XXHash64(item, c.seed)
	if c.fused {
		base, slots := c.fusedBase(h)
		col := int(base / uint64(depth)) // block column × 8: row-relative bucket base
		for r := 0; r < depth; r++ {
			buckets[r] = col + int(slots&7)
			counts[r] = c.flat[base+slots&7]
			base += 8
			slots >>= 3
		}
		return counts, buckets
	}
	if c.kwise {
		for r, row := range c.rows {
			j := row.HashRange(h, c.width)
			buckets[r] = j
			counts[r] = c.counts[r][j]
		}
		return counts, buckets
	}
	h2 := hashx.DeriveH2(h)
	w := uint64(c.width)
	for r := range c.counts {
		j := int(hashx.FastRange(h, w))
		buckets[r] = j
		counts[r] = c.counts[r][j]
		h += h2
	}
	return counts, buckets
}

// InnerProduct estimates the inner product Σᵢ f(i)·g(i) of the two
// frequency vectors summarized by compatible sketches, via the minimum
// over rows of the row dot products. Used for join-size estimation.
func (c *CountMin) InnerProduct(other *CountMin) (uint64, error) {
	if err := c.compatible(other); err != nil {
		return 0, err
	}
	best := uint64(math.MaxUint64)
	if c.fused {
		stride := uint64(c.depth) * 8
		for r := 0; r < c.depth; r++ {
			var dot uint64
			for base := uint64(r) * 8; base < uint64(len(c.flat)); base += stride {
				for s := uint64(0); s < 8; s++ {
					dot += c.flat[base+s] * other.flat[base+s]
				}
			}
			if dot < best {
				best = dot
			}
		}
		return best, nil
	}
	for r := range c.counts {
		var dot uint64
		for j := range c.counts[r] {
			dot += c.counts[r][j] * other.counts[r][j]
		}
		if dot < best {
			best = dot
		}
	}
	return best, nil
}

// N returns the total weight added.
func (c *CountMin) N() uint64 { return c.n }

// Width returns the sketch width.
func (c *CountMin) Width() int { return c.width }

// Depth returns the sketch depth.
func (c *CountMin) Depth() int { return c.depth }

// ErrorBound returns the additive error bound ε·N = (e/width)·N implied
// by the current stream weight.
func (c *CountMin) ErrorBound() float64 {
	return math.E / float64(c.width) * float64(c.n)
}

// SizeBytes returns the counter storage size.
func (c *CountMin) SizeBytes() int { return c.depth * c.width * 8 }

// Seed returns the hash seed the sketch was created with.
func (c *CountMin) Seed() uint64 { return c.seed }

// Conservative reports whether conservative update is enabled (which
// makes the sketch non-mergeable).
func (c *CountMin) Conservative() bool { return c.conservative }

// Derived reports whether row positions come from the double-hashing
// fast lane (true, the default) or the per-row KWise polynomials.
// Sketches in different modes address different buckets and are not
// mergeable.
func (c *CountMin) Derived() bool { return !c.kwise }

// Fused reports whether counters live in the cache-line-interleaved
// fused layout. Fused and standard sketches address different cells
// and are not mergeable with each other.
func (c *CountMin) Fused() bool { return c.fused }

// CountsRowMajor returns a copy of the counter grid flattened in
// row-major order (row r, bucket j at index r*width+j). It exists so
// hash-compatible external representations — notably
// concurrent.AtomicCountMin, which derives its row positions by the
// same double-hashing scheme — can exchange counters with this sketch.
// For fused-mode sketches the returned slice is the fused flat layout
// (cell order block-column, row, slot) rather than row-major; peers
// exchanging counters must be fused too, which compatibleWith-style
// checks enforce via Fused().
func (c *CountMin) CountsRowMajor() []uint64 {
	if c.fused {
		return append([]uint64(nil), c.flat...)
	}
	out := make([]uint64, 0, c.depth*c.width)
	for _, row := range c.counts {
		out = append(out, row...)
	}
	return out
}

// NewCountMinFromCounts reconstitutes a derived-mode sketch from a
// row-major counter grid produced by a hash-compatible peer (same
// width, depth and seed imply identical derived row positions). counts
// must hold width*depth values.
func NewCountMinFromCounts(width, depth int, seed uint64, counts []uint64, n uint64) (*CountMin, error) {
	if width < 1 || depth < 1 || len(counts) != width*depth {
		return nil, fmt.Errorf("%w: %d counters for a %dx%d grid",
			core.ErrIncompatible, len(counts), width, depth)
	}
	c := NewCountMin(width, depth, seed)
	for r := 0; r < depth; r++ {
		copy(c.counts[r], counts[r*width:(r+1)*width])
	}
	c.n = n
	return c, nil
}

// NewCountMinFusedFromCounts reconstitutes a fused-mode sketch from a
// flat fused-layout counter slice produced by a hash-compatible peer
// (same width, depth and seed imply identical block/slot addressing).
// width must already be a multiple of 8 and counts must hold
// width*depth values.
func NewCountMinFusedFromCounts(width, depth int, seed uint64, counts []uint64, n uint64) (*CountMin, error) {
	if width < 1 || width%8 != 0 || depth < 1 || depth > fusedMaxDepth || len(counts) != width*depth {
		return nil, fmt.Errorf("%w: %d counters for a fused %dx%d grid",
			core.ErrIncompatible, len(counts), width, depth)
	}
	c := NewCountMinFused(width, depth, seed)
	copy(c.flat, counts)
	c.n = n
	return c, nil
}

func (c *CountMin) compatible(other *CountMin) error {
	if c.width != other.width || c.depth != other.depth || c.seed != other.seed {
		return fmt.Errorf("%w: count-min %dx%d/seed=%d vs %dx%d/seed=%d",
			core.ErrIncompatible, c.width, c.depth, c.seed,
			other.width, other.depth, other.seed)
	}
	if c.kwise != other.kwise {
		return fmt.Errorf("%w: count-min row-hash modes differ (derived vs kwise)", core.ErrIncompatible)
	}
	if c.fused != other.fused {
		return fmt.Errorf("%w: count-min layouts differ (fused vs row-major)", core.ErrIncompatible)
	}
	return nil
}

// Merge adds another sketch's counters cell-wise; the result summarizes
// the combined stream exactly as if one sketch had seen it all.
// Conservative-update sketches cannot be merged (their counters are not
// linear), and attempting to merge them returns ErrIncompatible.
func (c *CountMin) Merge(other *CountMin) error {
	if err := c.compatible(other); err != nil {
		return err
	}
	if c.conservative || other.conservative {
		return fmt.Errorf("%w: conservative-update sketches are not mergeable", core.ErrIncompatible)
	}
	if c.fused {
		for i, v := range other.flat {
			c.flat[i] += v
		}
	} else {
		for r := range c.counts {
			for j := range c.counts[r] {
				c.counts[r][j] += other.counts[r][j]
			}
		}
	}
	c.n += other.n
	return nil
}

// Clone returns a deep copy.
func (c *CountMin) Clone() *CountMin {
	if c.fused {
		cp := NewCountMinFused(c.width, c.depth, c.seed)
		cp.conservative = c.conservative
		cp.n = c.n
		copy(cp.flat, c.flat)
		return cp
	}
	cp := NewCountMin(c.width, c.depth, c.seed)
	cp.kwise, cp.rows = c.kwise, c.rows // rows are immutable once built
	cp.conservative = c.conservative
	cp.n = c.n
	for r := range c.counts {
		copy(cp.counts[r], c.counts[r])
	}
	return cp
}

// Layout/row-hash mode byte values in wire version ≥ 2. Version 2
// writers only ever produced derived and kwise; fused arrived with
// version 3, so a version-2 payload carrying the fused mode byte is
// corrupt by construction and is rejected (see UnmarshalBinary).
const (
	cmModeDerived byte = 0
	cmModeKWise   byte = 1
	cmModeFused   byte = 2
)

// MarshalBinary serializes the sketch. Version 3 extends the version-2
// row-hash byte into a mode byte (0 derived, 1 kwise, 2 fused); fused
// payloads carry one flat slice in the fused cell order instead of
// per-row slices. Version-1 payloads (written before the derived fast
// lane existed) decode as KWise-mode sketches.
func (c *CountMin) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagCountMin, 3)
	w.U32(uint32(c.width))
	w.U32(uint32(c.depth))
	w.U64(c.seed)
	w.U64(c.n)
	if c.conservative {
		w.U8(1)
	} else {
		w.U8(0)
	}
	switch {
	case c.fused:
		w.U8(cmModeFused)
		w.U64Slice(c.flat)
	case c.kwise:
		w.U8(cmModeKWise)
		for _, row := range c.counts {
			w.U64Slice(row)
		}
	default:
		w.U8(cmModeDerived)
		for _, row := range c.counts {
			w.U64Slice(row)
		}
	}
	return w.Bytes(), nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary. The
// mode byte is validated against the version that wrote it: version 2
// predates the fused layout, so mode 2 in a version-2 envelope means
// the byte and the payload layout cannot agree and the payload is
// rejected rather than misparsed.
func (c *CountMin) UnmarshalBinary(data []byte) error {
	r, version, err := core.NewReaderVersioned(data, core.TagCountMin, 3)
	if err != nil {
		return err
	}
	width := int(r.U32())
	depth := int(r.U32())
	seed := r.U64()
	n := r.U64()
	conservative := r.U8() == 1
	mode := cmModeKWise // every version-1 writer used KWise rows
	if version >= 2 {
		mode = r.U8()
	}
	if r.Err() != nil {
		return r.Err()
	}
	if version == 2 && mode > cmModeKWise {
		return fmt.Errorf("%w: count-min mode byte %d in a version-2 envelope (fused layouts are version 3)", core.ErrCorrupt, mode)
	}
	if mode > cmModeFused {
		return fmt.Errorf("%w: count-min mode byte %d", core.ErrCorrupt, mode)
	}
	if mode == cmModeFused {
		if width < 1 || width%8 != 0 || depth < 1 || depth > fusedMaxDepth {
			return fmt.Errorf("%w: fused count-min dims %dx%d", core.ErrCorrupt, width, depth)
		}
		flat := r.U64Slice()
		if len(flat) != width*depth {
			return fmt.Errorf("%w: fused count-min payload %d cells for %dx%d", core.ErrCorrupt, len(flat), width, depth)
		}
		if err := r.Done(); err != nil {
			return err
		}
		fresh := NewCountMinFused(width, depth, seed)
		fresh.flat = flat
		fresh.n = n
		fresh.conservative = conservative
		*c = *fresh
		return nil
	}
	if width < 1 || depth < 1 || depth > 64 {
		return fmt.Errorf("%w: count-min dims %dx%d", core.ErrCorrupt, width, depth)
	}
	counts := make([][]uint64, depth)
	for i := range counts {
		counts[i] = r.U64Slice()
		if len(counts[i]) != width {
			return fmt.Errorf("%w: count-min row %d length %d", core.ErrCorrupt, i, len(counts[i]))
		}
	}
	if err := r.Done(); err != nil {
		return err
	}
	fresh := NewCountMin(width, depth, seed)
	if mode == cmModeKWise {
		fresh.kwise = true
		fresh.rows = newKWiseRows(seed, depth)
	}
	fresh.counts = counts
	fresh.n = n
	fresh.conservative = conservative
	*c = *fresh
	return nil
}
