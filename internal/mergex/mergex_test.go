package mergex

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/cardinality"
)

type counter struct {
	sum    uint64
	merges int
}

func (c *counter) fold(src *counter) error {
	c.sum += src.sum
	c.merges++
	return nil
}

func TestTreeMatchesSerialFold(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 16, 33, 100, 257} {
		items := make([]*counter, n)
		var want uint64
		for i := range items {
			items[i] = &counter{sum: uint64(i*i + 1)}
			want += uint64(i*i + 1)
		}
		got, err := Tree(items, (*counter).fold)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.sum != want {
			t.Errorf("n=%d: tree sum %d, serial sum %d", n, got.sum, want)
		}
		if got != items[0] {
			t.Errorf("n=%d: result is not items[0]", n)
		}
		// A reduction performs exactly n-1 pairwise merges in total.
		total := 0
		for _, it := range items {
			total += it.merges
		}
		if total != n-1 {
			t.Errorf("n=%d: %d merges performed, want %d", n, total, n-1)
		}
	}
}

// TestTreeParallelSchedule pins GOMAXPROCS above 1 so the goroutine
// fan-out runs (and the race detector watches it) even on a single-core
// host, where Tree would otherwise take its serial-fold fast path.
func TestTreeParallelSchedule(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	for _, n := range []int{2, 3, 17, 64, 129} {
		items := make([]*counter, n)
		var want uint64
		for i := range items {
			items[i] = &counter{sum: uint64(i + 1)}
			want += uint64(i + 1)
		}
		got, err := Tree(items, (*counter).fold)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.sum != want {
			t.Errorf("n=%d: parallel tree sum %d, want %d", n, got.sum, want)
		}
	}
}

func TestTreeEmpty(t *testing.T) {
	if _, err := Tree(nil, (*counter).fold); !errors.Is(err, ErrNoItems) {
		t.Fatalf("empty merge returned %v, want ErrNoItems", err)
	}
}

func TestTreeErrorPropagates(t *testing.T) {
	old := runtime.GOMAXPROCS(4) // exercise the goroutine error path too
	defer runtime.GOMAXPROCS(old)
	boom := errors.New("boom")
	items := make([]*counter, 16)
	for i := range items {
		items[i] = &counter{sum: 1}
	}
	var calls atomic.Int64
	_, err := Tree(items, func(dst, src *counter) error {
		if calls.Add(1) == 3 {
			return boom
		}
		return dst.fold(src)
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the injected error", err)
	}
}

// TestTreeHLLEquivalence checks the engine against a real sketch merge
// under -race (the CI race job runs this package): the tree-merged
// union must estimate exactly like a single sketch that saw every
// shard's stream.
func TestTreeHLLEquivalence(t *testing.T) {
	const shards, perShard = 23, 2000
	reference := cardinality.NewHLL(12, 42)
	items := make([]*cardinality.HLL, shards)
	for s := range items {
		items[s] = cardinality.NewHLL(12, 42)
		for i := 0; i < perShard; i++ {
			v := uint64(s*perShard + i)
			items[s].AddUint64(v)
			reference.AddUint64(v)
		}
	}
	merged, err := Tree(items, (*cardinality.HLL).Merge)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := merged.Estimate(), reference.Estimate(); got != want {
		t.Errorf("tree-merged estimate %f, single-sketch estimate %f", got, want)
	}
}

func TestTreeShapeMismatchSurfaces(t *testing.T) {
	items := []*cardinality.HLL{
		cardinality.NewHLL(12, 1),
		cardinality.NewHLL(12, 1),
		cardinality.NewHLL(13, 1), // incompatible precision
		cardinality.NewHLL(12, 1),
	}
	if _, err := Tree(items, (*cardinality.HLL).Merge); err == nil {
		t.Fatal("merging mismatched HLL shapes succeeded")
	}
}

func BenchmarkTreeMerge64HLL(b *testing.B) {
	build := func() []*cardinality.HLL {
		items := make([]*cardinality.HLL, 64)
		for s := range items {
			items[s] = cardinality.NewHLL(14, 7)
			for i := 0; i < 1000; i++ {
				items[s].AddUint64(uint64(s*1000 + i))
			}
		}
		return items
	}
	b.Run("tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			items := build()
			b.StartTimer()
			if _, err := Tree(items, (*cardinality.HLL).Merge); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			items := build()
			b.StartTimer()
			dst := items[0]
			for _, src := range items[1:] {
				if err := dst.Merge(src); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
