// Package mergex provides a parallel binary tree-merge engine for
// same-shape sketches. Folding N sketches serially costs N−1
// sequential merges on one core; the tree reduction performs the same
// N−1 merges in ⌈log₂N⌉ rounds, with the merges inside a round
// independent and spread across GOMAXPROCS goroutines. Sketch merges
// are associative (counter addition, bitwise OR, register max), so the
// tree's regrouping leaves the result exactly equal to the serial
// fold's.
//
// The fan-in pattern appears wherever distributed summaries come home:
// sketchcli merge over snapshot files, the server's bundle-merge
// endpoint, the E14 ad-reach union and the E24 federated aggregation
// round all route through Tree.
package mergex

import (
	"errors"
	"runtime"
	"sync"
)

// ErrNoItems is returned by Tree when called with an empty slice.
var ErrNoItems = errors.New("mergex: no items to merge")

// Tree reduces items to one by a parallel binary tree of pairwise
// merges and returns the result (items[0], which accumulates the
// reduction). merge(dst, src) must fold src into dst; it is never
// called twice concurrently with the same dst or src, so ordinary
// single-threaded sketch merges need no locking. Items are mutated —
// callers that still need the inputs pass clones.
//
// Round r merges items[i+2^r] into items[i] for every i that is a
// multiple of 2^(r+1); the merges of one round run concurrently on up
// to GOMAXPROCS goroutines. On the first merge error the engine
// finishes the in-flight round and returns that error (the items are
// then partially merged and should be discarded).
func Tree[T any](items []T, merge func(dst, src T) error) (T, error) {
	var zero T
	if len(items) == 0 {
		return zero, ErrNoItems
	}
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 {
		// One core: the binary-tree schedule would read two cold
		// operands per merge, where the serial fold keeps one hot dst
		// and streams the sources — strictly better cache behavior for
		// the same N−1 merges (associativity makes the results equal).
		for _, src := range items[1:] {
			if err := merge(items[0], src); err != nil {
				return zero, err
			}
		}
		return items[0], nil
	}
	for stride := 1; stride < len(items); stride *= 2 {
		// Collect this round's independent pairs: dst i, src i+stride.
		step := 2 * stride
		npairs := 0
		for i := 0; i+stride < len(items); i += step {
			npairs++
		}
		if npairs == 0 {
			continue
		}
		w := workers
		if w > npairs {
			w = npairs
		}
		if w <= 1 {
			// One worker (or one pair): skip the goroutine machinery.
			for i := 0; i+stride < len(items); i += step {
				if err := merge(items[i], items[i+stride]); err != nil {
					return zero, err
				}
			}
			continue
		}
		var (
			wg       sync.WaitGroup
			errMu    sync.Mutex
			firstErr error
		)
		for worker := 0; worker < w; worker++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				// Worker j handles pairs j, j+w, j+2w, … — a static
				// partition; merges within a round are uniform enough
				// that work stealing would buy little.
				for p := worker; p < npairs; p += w {
					i := p * step
					if err := merge(items[i], items[i+stride]); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
				}
			}(worker)
		}
		wg.Wait()
		if firstErr != nil {
			return zero, firstErr
		}
	}
	return items[0], nil
}
