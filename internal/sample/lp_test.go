package sample

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
)

func TestLpSamplerL1Distribution(t *testing.T) {
	// Items 0..9 with weights 1..10: inclusion frequency over many
	// independent samplers must be proportional to weight (p=1).
	const domain = 10
	const trials = 3000
	counts := make([]int, domain)
	for trial := 0; trial < trials; trial++ {
		s := NewLpSampler(1, 256, 5, uint64(trial)+1)
		for i := uint64(0); i < domain; i++ {
			s.Update(i, float64(i+1))
		}
		idx, _, ok := s.Sample(domain)
		if !ok {
			t.Fatal("sampler failed")
		}
		counts[idx]++
	}
	total := 55.0 // sum 1..10
	for i := 0; i < domain; i++ {
		want := float64(i+1) / total
		got := float64(counts[i]) / trials
		sigma := math.Sqrt(want * (1 - want) / trials)
		if math.Abs(got-want) > 6*sigma+0.01 {
			t.Errorf("item %d: sampled %.4f, want %.4f", i, got, want)
		}
	}
}

func TestLpSamplerL2Distribution(t *testing.T) {
	// p=2: inclusion ∝ weight². Weights 1,2,3 → probabilities 1/14,
	// 4/14, 9/14.
	const trials = 3000
	counts := make([]int, 3)
	for trial := 0; trial < trials; trial++ {
		s := NewLpSampler(2, 256, 5, uint64(trial)+50000)
		s.Update(0, 1)
		s.Update(1, 2)
		s.Update(2, 3)
		idx, _, ok := s.Sample(3)
		if !ok {
			t.Fatal("sampler failed")
		}
		counts[idx]++
	}
	for i, w := range []float64{1, 4, 9} {
		want := w / 14
		got := float64(counts[i]) / trials
		sigma := math.Sqrt(want * (1 - want) / trials)
		if math.Abs(got-want) > 6*sigma+0.02 {
			t.Errorf("item %d: sampled %.4f, want %.4f", i, got, want)
		}
	}
}

func TestLpSamplerWeightRecovery(t *testing.T) {
	s := NewLpSampler(1, 512, 5, 7)
	s.Update(3, 100)
	s.Update(5, 1)
	idx, w, ok := s.Sample(10)
	if !ok {
		t.Fatal("sampler failed")
	}
	// With one dominant item, it is sampled and its weight recovered.
	if idx != 3 {
		t.Fatalf("sampled %d, want 3 (dominant)", idx)
	}
	if core.RelErr(w, 100) > 0.05 {
		t.Errorf("recovered weight %.1f, want ~100", w)
	}
}

func TestLpSamplerTurnstile(t *testing.T) {
	s := NewLpSampler(1, 256, 5, 8)
	for i := uint64(0); i < 100; i++ {
		s.Update(i, 2)
	}
	for i := uint64(0); i < 100; i++ {
		if i != 42 {
			s.Update(i, -2)
		}
	}
	idx, w, ok := s.Sample(100)
	if !ok || idx != 42 {
		t.Fatalf("Sample = (%d, %v), want (42, true)", idx, ok)
	}
	if core.RelErr(w, 2) > 0.1 {
		t.Errorf("weight %.2f, want ~2", w)
	}
}

func TestLpSamplerEmpty(t *testing.T) {
	s := NewLpSampler(1, 64, 3, 9)
	if _, _, ok := s.Sample(100); ok {
		t.Error("empty sampler returned a sample")
	}
}

func TestLpSamplerMerge(t *testing.T) {
	a := NewLpSampler(1, 128, 3, 10)
	b := NewLpSampler(1, 128, 3, 10)
	a.Update(7, 5)
	b.Update(7, -5)
	b.Update(9, 3)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	idx, _, ok := a.Sample(20)
	if !ok || idx != 9 {
		t.Fatalf("merged sample = (%d, %v), want (9, true)", idx, ok)
	}
	if err := a.Merge(NewLpSampler(2, 128, 3, 10)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("merge across p must fail")
	}
}

func TestLpSamplerSpaceIndependentOfDomain(t *testing.T) {
	s := NewLpSampler(1, 256, 5, 11)
	if s.SizeBytes() != 256*5*8 {
		t.Errorf("SizeBytes = %d", s.SizeBytes())
	}
	if s.P() != 1 {
		t.Error("P accessor wrong")
	}
}

func TestLpSamplerPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"p":     func() { NewLpSampler(0, 64, 3, 1) },
		"width": func() { NewLpSampler(1, 1, 3, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkLpSamplerUpdate(b *testing.B) {
	s := NewLpSampler(1, 512, 5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(uint64(i%1000), 1)
	}
}
