package sample

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/hashx"
)

// LpSampler samples an index from a turnstile stream with probability
// proportional to |f(i)|^p — the problem of "Tight bounds for Lp
// samplers" (Jowhari, Saglam, Tardos; PODS 2011, Test-of-Time award in
// the paper's gems list). It implements precision sampling with an
// exponential race: each index i is assigned a deterministic
// pseudo-random scale eᵢ ~ Exp(1) and the sketch stores the scaled
// vector g(i) = f(i)/eᵢ^{1/p} in a linear Count-Sketch. By the
// exponential race property, P[|f(i)|^p/eᵢ is maximal] =
// |f(i)|^p / Σⱼ|f(j)|^p *exactly*, so the index maximizing |g(i)| is an
// exact Lp sample when the scaled values are read exactly; sketch
// noise perturbs this by O(1/√width).
//
// Substitution note (DESIGN.md §3): the JST construction recovers the
// maximum via dyadic heavy-hitter structures; this implementation
// enumerates a caller-provided bounded domain at query time, which
// preserves the sublinear *space* story (the sketch is small and
// linear; only the query walks the domain).
type LpSampler struct {
	p      float64
	width  int
	depth  int
	counts [][]float64
	bucket []*hashx.KWise
	sign   []*hashx.KWise
	scale  *hashx.KWise // drives the per-index u_i
	seed   uint64
}

// NewLpSampler creates a sampler for the given p (1 or 2 are the
// standard choices; any p > 0 works) with a width×depth scaled sketch.
func NewLpSampler(p float64, width, depth int, seed uint64) *LpSampler {
	if p <= 0 {
		panic("sample: Lp sampler requires p > 0")
	}
	if width < 2 || depth < 1 {
		panic("sample: Lp sampler requires width >= 2, depth >= 1")
	}
	if depth%2 == 0 {
		depth++
	}
	seeds := hashx.SeedSequence(seed, 2*depth+1)
	bucket := make([]*hashx.KWise, depth)
	sign := make([]*hashx.KWise, depth)
	counts := make([][]float64, depth)
	for i := 0; i < depth; i++ {
		bucket[i] = hashx.NewKWise(2, seeds[2*i])
		sign[i] = hashx.NewKWise(4, seeds[2*i+1])
		counts[i] = make([]float64, width)
	}
	return &LpSampler{
		p: p, width: width, depth: depth,
		counts: counts, bucket: bucket, sign: sign,
		scale: hashx.NewKWise(2, seeds[2*depth]),
		seed:  seed,
	}
}

// u returns the deterministic Exp(1) scale for index i, bounded away
// from zero to keep g finite.
func (s *LpSampler) u(index uint64) float64 {
	v := float64(s.scale.Hash(index)) / float64(hashx.MersennePrime61)
	if v < 1e-15 {
		v = 1e-15
	}
	e := -math.Log(v) // Exp(1) via inverse transform
	if e < 1e-12 {
		e = 1e-12
	}
	return e
}

// Update adds weight to index (negative weights supported — the
// structure is linear).
func (s *LpSampler) Update(index uint64, weight float64) {
	g := weight / math.Pow(s.u(index), 1/s.p)
	for r := 0; r < s.depth; r++ {
		j := s.bucket[r].HashRange(index, s.width)
		s.counts[r][j] += float64(s.sign[r].Sign(index)) * g
	}
}

// estimate returns the median estimate of the scaled value g(i).
func (s *LpSampler) estimate(index uint64) float64 {
	ests := make([]float64, s.depth)
	for r := 0; r < s.depth; r++ {
		j := s.bucket[r].HashRange(index, s.width)
		ests[r] = float64(s.sign[r].Sign(index)) * s.counts[r][j]
	}
	return core.Median(ests)
}

// Sample scans the domain [0, domain) and returns the index with the
// maximal |ĝ(i)| — an approximate Lp sample — together with the
// recovered weight estimate f̂(i) = ĝ(i)·uᵢ^{1/p}. ok is false when the
// sketch appears empty.
func (s *LpSampler) Sample(domain uint64) (index uint64, weight float64, ok bool) {
	bestAbs := 0.0
	for i := uint64(0); i < domain; i++ {
		g := s.estimate(i)
		if a := math.Abs(g); a > bestAbs {
			bestAbs = a
			index = i
			weight = g * math.Pow(s.u(i), 1/s.p)
		}
	}
	return index, weight, bestAbs > 0
}

// Merge adds another sampler cell-wise (linearity).
func (s *LpSampler) Merge(other *LpSampler) error {
	if s.p != other.p || s.width != other.width || s.depth != other.depth || s.seed != other.seed {
		return fmt.Errorf("%w: Lp sampler shape mismatch", core.ErrIncompatible)
	}
	for r := range s.counts {
		for j := range s.counts[r] {
			s.counts[r][j] += other.counts[r][j]
		}
	}
	return nil
}

// P returns the sampling exponent.
func (s *LpSampler) P() float64 { return s.p }

// SizeBytes returns the sketch memory — independent of the domain.
func (s *LpSampler) SizeBytes() int { return s.depth * s.width * 8 }
