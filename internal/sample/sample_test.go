package sample

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/hashx"
)

func TestReservoirUniformInclusion(t *testing.T) {
	// Over many trials, every stream position should land in the
	// sample with probability k/n.
	const k, n, trials = 10, 200, 3000
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir(k, uint64(trial))
		for i := 0; i < n; i++ {
			r.Add(hashx.Uint64Bytes(uint64(i)))
		}
		for _, it := range r.Sample() {
			var v uint64
			for b := 7; b >= 0; b-- {
				v = v<<8 | uint64(it[b])
			}
			counts[v]++
		}
	}
	want := float64(trials) * float64(k) / float64(n)
	sigma := math.Sqrt(want)
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*sigma {
			t.Errorf("position %d sampled %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestReservoirFillsBelowK(t *testing.T) {
	r := NewReservoir(100, 1)
	for i := 0; i < 50; i++ {
		r.AddString(fmt.Sprint(i))
	}
	if len(r.Sample()) != 50 {
		t.Errorf("sample size %d, want 50", len(r.Sample()))
	}
	if r.N() != 50 || r.K() != 100 {
		t.Error("metadata wrong")
	}
}

func TestReservoirMergeUniform(t *testing.T) {
	// After merging reservoirs over two streams, inclusion probability
	// should be roughly uniform over the union.
	const k, nA, nB, trials = 8, 100, 300, 4000
	counts := make([]int, nA+nB)
	for trial := 0; trial < trials; trial++ {
		a := NewReservoir(k, uint64(trial)*2+1)
		b := NewReservoir(k, uint64(trial)*2+2)
		for i := 0; i < nA; i++ {
			a.Add(hashx.Uint64Bytes(uint64(i)))
		}
		for i := nA; i < nA+nB; i++ {
			b.Add(hashx.Uint64Bytes(uint64(i)))
		}
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
		if len(a.Sample()) != k {
			t.Fatalf("merged sample size %d", len(a.Sample()))
		}
		for _, it := range a.Sample() {
			var v uint64
			for b := 7; b >= 0; b-- {
				v = v<<8 | uint64(it[b])
			}
			counts[v]++
		}
	}
	want := float64(trials) * float64(k) / float64(nA+nB)
	sigma := math.Sqrt(want)
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 7*sigma {
			t.Errorf("position %d sampled %d times, want ~%.0f", i, c, want)
		}
	}
	a := NewReservoir(4, 1)
	if err := a.Merge(NewReservoir(8, 2)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("merge across capacities must fail")
	}
}

func TestReservoirSerialization(t *testing.T) {
	r := NewReservoir(16, 5)
	for i := 0; i < 1000; i++ {
		r.AddString(fmt.Sprint(i))
	}
	data, _ := r.MarshalBinary()
	var g Reservoir
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.N() != r.N() || len(g.Sample()) != len(r.Sample()) {
		t.Error("round trip changed state")
	}
	for i := range r.Sample() {
		if string(g.Sample()[i]) != string(r.Sample()[i]) {
			t.Fatal("round trip changed sample")
		}
	}
}

func TestWeightedReservoirFavorsHeavy(t *testing.T) {
	// One item with weight 50 among 100 items of weight 1 should be
	// sampled much more often than 1/100.
	const trials = 2000
	hits := 0
	for trial := 0; trial < trials; trial++ {
		r := NewWeightedReservoir(1, uint64(trial))
		for i := 0; i < 100; i++ {
			w := 1.0
			if i == 42 {
				w = 50
			}
			r.Add(hashx.Uint64Bytes(uint64(i)), w)
		}
		if len(r.Sample()) == 1 && r.Sample()[0][0] == 42 {
			hits++
		}
	}
	// Expected inclusion ≈ 50/149 ≈ 1/3.
	frac := float64(hits) / trials
	if frac < 0.2 || frac > 0.5 {
		t.Errorf("heavy item sampled %.3f of trials, want ~0.33", frac)
	}
}

func TestWeightedReservoirPanics(t *testing.T) {
	r := NewWeightedReservoir(4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive weight must panic")
		}
	}()
	r.Add([]byte("x"), 0)
}

func TestOneSparseRecovery(t *testing.T) {
	var c oneSparse
	const r = 123456789
	c.update(42, 7, r)
	idx, w, ok := c.recover(r)
	if !ok || idx != 42 || w != 7 {
		t.Fatalf("recover = (%d, %d, %v)", idx, w, ok)
	}
	// Add a second item: no longer 1-sparse.
	c.update(43, 1, r)
	if _, _, ok := c.recover(r); ok {
		t.Error("2-sparse cell decoded as 1-sparse")
	}
	// Remove it again: 1-sparse once more.
	c.update(43, -1, r)
	idx, w, ok = c.recover(r)
	if !ok || idx != 42 || w != 7 {
		t.Error("cell did not return to 1-sparse after cancellation")
	}
	// Cancel everything: empty.
	c.update(42, -7, r)
	if _, _, ok := c.recover(r); ok {
		t.Error("empty cell decoded")
	}
}

func TestSparseRecoveryFull(t *testing.T) {
	sr := NewSparseRecovery(8, 1)
	want := map[uint64]int64{5: 3, 900: -2, 77: 10, 12345: 1}
	for idx, w := range want {
		sr.Update(idx, w)
	}
	got := sr.Recover()
	for idx, w := range want {
		if got[idx] != w {
			t.Errorf("recovered[%d] = %d, want %d", idx, got[idx], w)
		}
	}
}

func TestSparseRecoveryAfterDeletions(t *testing.T) {
	sr := NewSparseRecovery(4, 2)
	// Insert 100 items, delete 98 — recovery must find the 2 survivors.
	for i := uint64(0); i < 100; i++ {
		sr.Update(i, 5)
	}
	for i := uint64(0); i < 98; i++ {
		sr.Update(i, -5)
	}
	got := sr.Recover()
	if got[98] != 5 || got[99] != 5 {
		t.Errorf("recovered %v, want {98:5, 99:5}", got)
	}
}

func TestSparseRecoveryMerge(t *testing.T) {
	a := NewSparseRecovery(4, 3)
	b := NewSparseRecovery(4, 3)
	a.Update(10, 2)
	b.Update(20, 3)
	b.Update(10, -2) // cancels a's item after merge
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got := a.Recover()
	if got[20] != 3 {
		t.Errorf("recovered %v", got)
	}
	if _, ok := got[10]; ok {
		t.Error("cancelled item recovered")
	}
	if err := a.Merge(NewSparseRecovery(4, 4)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("merge across seeds must fail")
	}
}

func TestL0SamplerBasic(t *testing.T) {
	l := NewL0Sampler(12, 1)
	members := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		l.Update(i*7, 1)
		members[i*7] = true
	}
	idx, w, ok := l.Sample()
	if !ok {
		t.Fatal("sampler failed on 1000-item support")
	}
	if !members[idx] {
		t.Fatalf("sampled %d not in support", idx)
	}
	if w != 1 {
		t.Errorf("weight %d, want 1", w)
	}
}

func TestL0SamplerSurvivesDeletions(t *testing.T) {
	// The strict-turnstile stress: insert many, delete all but one.
	l := NewL0Sampler(12, 2)
	for i := uint64(0); i < 5000; i++ {
		l.Update(i, 1)
	}
	for i := uint64(0); i < 5000; i++ {
		if i != 1234 {
			l.Update(i, -1)
		}
	}
	idx, w, ok := l.Sample()
	if !ok || idx != 1234 || w != 1 {
		t.Fatalf("Sample = (%d, %d, %v), want (1234, 1, true)", idx, w, ok)
	}
}

func TestL0SamplerEmpty(t *testing.T) {
	l := NewL0Sampler(8, 3)
	if _, _, ok := l.Sample(); ok {
		t.Error("empty sampler returned a sample")
	}
	l.Update(5, 1)
	l.Update(5, -1)
	if _, _, ok := l.Sample(); ok {
		t.Error("fully cancelled sampler returned a sample")
	}
}

func TestL0SamplerMergeLinear(t *testing.T) {
	a := NewL0Sampler(12, 4)
	b := NewL0Sampler(12, 4)
	a.Update(100, 1)
	b.Update(100, -1) // cancels across the merge
	b.Update(200, 1)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	idx, _, ok := a.Sample()
	if !ok || idx != 200 {
		t.Fatalf("merged sample = (%d, %v), want (200, true)", idx, ok)
	}
	if err := a.Merge(NewL0Sampler(12, 5)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("merge across seeds must fail")
	}
}

func TestSparseRecoverySerialization(t *testing.T) {
	sr := NewSparseRecovery(8, 31)
	for i := uint64(0); i < 6; i++ {
		sr.Update(i*1000, int64(i)+1)
	}
	data, err := sr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g SparseRecovery
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	got := g.Recover()
	for i := uint64(0); i < 6; i++ {
		if got[i*1000] != int64(i)+1 {
			t.Fatalf("round trip lost item %d", i*1000)
		}
	}
	if err := g.UnmarshalBinary(data[:10]); !errors.Is(err, core.ErrCorrupt) {
		t.Error("truncated input accepted")
	}
}

func TestL0SamplerSerializationAndRemoteMerge(t *testing.T) {
	// The distributed AGM story: a sampler built on machine A is
	// serialized, restored on machine B, and merged with B's — the
	// merged sampler behaves as if both streams hit one sketch.
	a := NewL0Sampler(12, 33)
	b := NewL0Sampler(12, 33)
	for i := uint64(0); i < 500; i++ {
		a.Update(i, 1)
	}
	for i := uint64(0); i < 500; i++ {
		b.Update(i, -1) // B cancels A entirely...
	}
	b.Update(777777, 5) // ...except one survivor
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored L0Sampler
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if err := restored.Merge(b); err != nil {
		t.Fatal(err)
	}
	idx, w, ok := restored.Sample()
	if !ok || idx != 777777 || w != 5 {
		t.Fatalf("Sample = (%d, %d, %v), want (777777, 5, true)", idx, w, ok)
	}
}

func TestL0SamplerSpread(t *testing.T) {
	// Samples across independent sampler instances should spread over
	// the support rather than fixating on one element.
	support := 50
	seen := map[uint64]bool{}
	for trial := 0; trial < 200; trial++ {
		l := NewL0Sampler(12, uint64(trial)+100)
		for i := uint64(0); i < uint64(support); i++ {
			l.Update(i, 1)
		}
		if idx, _, ok := l.Sample(); ok {
			seen[idx] = true
		}
	}
	if len(seen) < support/4 {
		t.Errorf("only %d distinct elements sampled from support of %d", len(seen), support)
	}
}

func BenchmarkReservoirAdd(b *testing.B) {
	r := NewReservoir(1024, 1)
	item := []byte("benchmark-item")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Add(item)
	}
}

func BenchmarkL0Update(b *testing.B) {
	l := NewL0Sampler(12, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Update(uint64(i), 1)
	}
}
