package sample

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/hashx"
)

// This file implements L0 (support) sampling over turnstile streams:
// return a member of {i : f(i) ≠ 0} even after insertions and
// deletions. The construction is the standard three-layer linear
// sketch: a 1-sparse recovery cell (sum / index-weighted sum /
// fingerprint), an s-sparse recovery structure (hashing into many
// cells), and geometric subsampling levels. Being linear, L0 samplers
// support merge by cell-wise addition — the property the AGM graph
// sketch (internal/graphsketch) relies on to sample cut edges from
// merged neighborhood sketches.

// oneSparse is a 1-sparse recovery cell: it can detect whether the
// (signed) items hashed into it form exactly one nonzero coordinate,
// and if so return it. Detection uses the polynomial fingerprint
// Σ wᵢ·r^i over GF(2^61−1), giving false-positive probability ≤
// support/2^61.
type oneSparse struct {
	w  int64  // Σ wᵢ
	iw int64  // Σ wᵢ·i (indexes are < 2^32 so this cannot overflow for our streams)
	fp uint64 // Σ wᵢ·r^i mod p
}

// l0Prime is the fingerprint field modulus.
const l0Prime = hashx.MersennePrime61

// fpPow computes r^i mod p by fast exponentiation.
func fpPow(r uint64, i uint64) uint64 {
	result := uint64(1)
	base := r % l0Prime
	for i > 0 {
		if i&1 == 1 {
			result = mulMod(result, base)
		}
		base = mulMod(base, base)
		i >>= 1
	}
	return result
}

func mulMod(a, b uint64) uint64 {
	// Mersenne reduction of the 128-bit product: hi·2^64 + lo ≡ hi·8 + lo.
	hi, lo := bits.Mul64(a%l0Prime, b%l0Prime)
	return addMod(reduceMod(lo), reduceMod(hi<<3))
}

func reduceMod(x uint64) uint64 {
	x = (x & l0Prime) + (x >> 61)
	if x >= l0Prime {
		x -= l0Prime
	}
	return x
}

func addMod(a, b uint64) uint64 {
	s := a + b
	if s >= l0Prime {
		s -= l0Prime
	}
	return s
}

func subMod(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + l0Prime - b
}

// update folds (index, weight) into the cell.
func (c *oneSparse) update(index uint64, weight int64, r uint64) {
	c.w += weight
	c.iw += weight * int64(index)
	t := fpPow(r, index)
	if weight >= 0 {
		c.fp = addMod(c.fp, mulMod(uint64(weight)%l0Prime, t))
	} else {
		c.fp = subMod(c.fp, mulMod(uint64(-weight)%l0Prime, t))
	}
}

// add merges another cell (linearity).
func (c *oneSparse) add(other oneSparse) {
	c.w += other.w
	c.iw += other.iw
	c.fp = addMod(c.fp, other.fp)
}

// recover returns (index, weight, true) if the cell provably holds
// exactly one nonzero coordinate.
func (c *oneSparse) recover(r uint64) (uint64, int64, bool) {
	if c.w == 0 {
		return 0, 0, false
	}
	if c.iw%c.w != 0 {
		return 0, 0, false
	}
	q := c.iw / c.w
	if q < 0 {
		return 0, 0, false
	}
	idx := uint64(q)
	// Verify fingerprint: fp must equal w·r^idx.
	var wfp uint64
	if c.w >= 0 {
		wfp = mulMod(uint64(c.w)%l0Prime, fpPow(r, idx))
	} else {
		wfp = l0Prime - mulMod(uint64(-c.w)%l0Prime, fpPow(r, idx))
		if wfp == l0Prime {
			wfp = 0
		}
	}
	if wfp != c.fp {
		return 0, 0, false
	}
	return idx, c.w, true
}

// SparseRecovery recovers a vector with support ≤ s from a turnstile
// stream: s·2 cells per row × rows rows of 1-sparse cells, indexed by
// pairwise-independent hashes. Recovery scans all cells and returns the
// union of successful 1-sparse decodings.
type SparseRecovery struct {
	cells [][]oneSparse
	hash  []*hashx.KWise
	s     int
	r     uint64 // fingerprint base
	seed  uint64
}

// NewSparseRecovery creates a structure that recovers supports up to s
// with high probability.
func NewSparseRecovery(s int, seed uint64) *SparseRecovery {
	if s < 1 {
		panic("sample: sparse recovery requires s >= 1")
	}
	const rows = 4
	seeds := hashx.SeedSequence(seed, rows+1)
	cells := make([][]oneSparse, rows)
	hash := make([]*hashx.KWise, rows)
	for i := 0; i < rows; i++ {
		cells[i] = make([]oneSparse, 2*s)
		hash[i] = hashx.NewKWise(2, seeds[i])
	}
	r := seeds[rows]%(l0Prime-2) + 1
	return &SparseRecovery{cells: cells, hash: hash, s: s, r: r, seed: seed}
}

// Update folds (index, weight) into the structure.
func (sr *SparseRecovery) Update(index uint64, weight int64) {
	for i, h := range sr.hash {
		j := h.HashRange(index, len(sr.cells[i]))
		sr.cells[i][j].update(index, weight, sr.r)
	}
}

// Merge adds another structure cell-wise.
func (sr *SparseRecovery) Merge(other *SparseRecovery) error {
	if sr.s != other.s || sr.seed != other.seed {
		return fmt.Errorf("%w: sparse recovery shape mismatch", core.ErrIncompatible)
	}
	for i := range sr.cells {
		for j := range sr.cells[i] {
			sr.cells[i][j].add(other.cells[i][j])
		}
	}
	return nil
}

// MarshalBinary serializes the structure (linear sketches travel
// between machines in distributed graph processing).
func (sr *SparseRecovery) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagSparseRecovery, 1)
	w.U32(uint32(sr.s))
	w.U64(sr.seed)
	for _, row := range sr.cells {
		for _, c := range row {
			w.I64(c.w)
			w.I64(c.iw)
			w.U64(c.fp)
		}
	}
	return w.Bytes(), nil
}

// UnmarshalBinary restores a structure serialized by MarshalBinary.
func (sr *SparseRecovery) UnmarshalBinary(data []byte) error {
	r, _, err := core.NewReader(data, core.TagSparseRecovery)
	if err != nil {
		return err
	}
	s := int(r.U32())
	seed := r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	if s < 1 || s > 1<<20 {
		return fmt.Errorf("%w: sparse recovery s=%d", core.ErrCorrupt, s)
	}
	fresh := NewSparseRecovery(s, seed)
	for i := range fresh.cells {
		for j := range fresh.cells[i] {
			fresh.cells[i][j] = oneSparse{w: r.I64(), iw: r.I64(), fp: r.U64()}
		}
	}
	if err := r.Done(); err != nil {
		return err
	}
	*sr = *fresh
	return nil
}

// Recover returns the recovered (index, weight) pairs. If the true
// support exceeds s, recovery may be partial or empty.
func (sr *SparseRecovery) Recover() map[uint64]int64 {
	out := make(map[uint64]int64)
	for i := range sr.cells {
		for j := range sr.cells[i] {
			if idx, w, ok := sr.cells[i][j].recover(sr.r); ok {
				out[idx] = w
			}
		}
	}
	return out
}

// L0Sampler samples a member of the support of a turnstile stream. It
// keeps ~log(universe) geometric subsampling levels, each holding an
// s-sparse recovery structure over the items whose level hash reaches
// that depth. Query scans levels from sparsest down and returns the
// recovered coordinate with the smallest tie-break hash, which is close
// to a uniform support sample.
//
// Level structures are allocated lazily: a stream touching d distinct
// indexes materializes only ~log₂(d) levels, which keeps fleets of
// samplers (one per graph vertex in internal/graphsketch) affordable.
type L0Sampler struct {
	levels     []*SparseRecovery // nil until first touched
	levelSeeds []uint64
	s          int
	lhash      *hashx.KWise
	seed       uint64
}

// l0Levels is the number of subsampling levels (supports universes up
// to 2^40 comfortably).
const l0Levels = 40

// NewL0Sampler creates an L0 sampler with per-level sparsity s
// (s = 12 gives high recovery probability).
func NewL0Sampler(s int, seed uint64) *L0Sampler {
	if s < 1 {
		panic("sample: L0 sampler requires s >= 1")
	}
	seeds := hashx.SeedSequence(seed, l0Levels+1)
	return &L0Sampler{
		levels:     make([]*SparseRecovery, l0Levels),
		levelSeeds: seeds[:l0Levels],
		s:          s,
		lhash:      hashx.NewKWise(2, seeds[l0Levels]),
		seed:       seed,
	}
}

// level materializes and returns the recovery structure at depth j.
func (l *L0Sampler) level(j int) *SparseRecovery {
	if l.levels[j] == nil {
		l.levels[j] = NewSparseRecovery(l.s, l.levelSeeds[j])
	}
	return l.levels[j]
}

// levelOf returns the subsampling depth of an index: level j includes
// the index if the level hash has j leading "all levels up to j" — we
// use the standard trailing-zeros geometric assignment.
func (l *L0Sampler) levelOf(index uint64) int {
	h := l.lhash.Hash(index)
	// Count trailing zeros (geometric with p = 1/2), capped.
	tz := 0
	for h&1 == 0 && tz < l0Levels-1 {
		tz++
		h >>= 1
	}
	return tz
}

// Update folds (index, weight) into every level the index belongs to
// (levels 0..levelOf inclusive).
func (l *L0Sampler) Update(index uint64, weight int64) {
	depth := l.levelOf(index)
	for j := 0; j <= depth; j++ {
		l.level(j).Update(index, weight)
	}
}

// Merge adds another sampler level-wise.
func (l *L0Sampler) Merge(other *L0Sampler) error {
	if l.seed != other.seed || l.s != other.s || len(l.levels) != len(other.levels) {
		return fmt.Errorf("%w: L0 sampler shape mismatch", core.ErrIncompatible)
	}
	for i := range l.levels {
		if other.levels[i] == nil {
			continue // other level holds nothing: merging zeros is a no-op
		}
		if err := l.level(i).Merge(other.levels[i]); err != nil {
			return err
		}
	}
	return nil
}

// MarshalBinary serializes the sampler: only materialized levels are
// written, preserving the lazy-allocation memory profile on load.
func (l *L0Sampler) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagL0SamplerFull, 1)
	w.U32(uint32(l.s))
	w.U64(l.seed)
	live := 0
	for _, lv := range l.levels {
		if lv != nil {
			live++
		}
	}
	w.U32(uint32(live))
	for i, lv := range l.levels {
		if lv == nil {
			continue
		}
		w.U32(uint32(i))
		payload, err := lv.MarshalBinary()
		if err != nil {
			return nil, err
		}
		w.BytesField(payload)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary restores a sampler serialized by MarshalBinary.
func (l *L0Sampler) UnmarshalBinary(data []byte) error {
	r, _, err := core.NewReader(data, core.TagL0SamplerFull)
	if err != nil {
		return err
	}
	s := int(r.U32())
	seed := r.U64()
	live := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if s < 1 || live < 0 || live > l0Levels {
		return fmt.Errorf("%w: L0 sampler s=%d live=%d", core.ErrCorrupt, s, live)
	}
	fresh := NewL0Sampler(s, seed)
	for i := 0; i < live; i++ {
		idx := int(r.U32())
		payload := r.BytesField()
		if r.Err() != nil {
			return r.Err()
		}
		if idx < 0 || idx >= l0Levels {
			return fmt.Errorf("%w: L0 sampler level index %d", core.ErrCorrupt, idx)
		}
		var sr SparseRecovery
		if err := sr.UnmarshalBinary(payload); err != nil {
			return err
		}
		if sr.seed != fresh.levelSeeds[idx] {
			return fmt.Errorf("%w: L0 sampler level seed mismatch", core.ErrCorrupt)
		}
		fresh.levels[idx] = &sr
	}
	if err := r.Done(); err != nil {
		return err
	}
	*l = *fresh
	return nil
}

// Sample returns a member of the current support with its net weight.
// ok is false when the support is empty or recovery failed at every
// level (probability decreasing geometrically in s).
func (l *L0Sampler) Sample() (index uint64, weight int64, ok bool) {
	// Scan from the deepest (sparsest) level down; the first level
	// whose recovery is non-empty gives candidates.
	for j := len(l.levels) - 1; j >= 0; j-- {
		if l.levels[j] == nil {
			continue
		}
		rec := l.levels[j].Recover()
		if len(rec) == 0 {
			continue
		}
		// Choose the candidate with minimum tie-break hash.
		first := true
		var bestIdx uint64
		var bestW int64
		var bestH uint64
		for idx, w := range rec {
			h := l.lhash.Hash(idx ^ 0x5bd1e995)
			if first || h < bestH {
				bestIdx, bestW, bestH = idx, w, h
				first = false
			}
		}
		return bestIdx, bestW, true
	}
	return 0, 0, false
}
