// Package sample implements the sampling-based summaries the paper
// calls the earliest sketches: uniform reservoir sampling (Algorithm R,
// the Fan/Waterman incremental scheme), weighted reservoir sampling
// (Efraimidis–Spirakis A-ES), and an L0 (distinct) sampler built from
// s-sparse recovery — the linear-sketch primitive behind the "Tight
// bounds for Lp samplers" PODS 2011 result and the AGM graph sketches
// (internal/graphsketch).
package sample

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/randx"
)

// Reservoir maintains a uniform random sample of k items from a stream
// of unknown length: item t replaces a random slot with probability
// k/t. Every subset of size k of the prefix is equally likely — the
// invariant the property test checks.
type Reservoir struct {
	k     int
	n     uint64
	items [][]byte
	rng   *randx.RNG
	seed  uint64
}

// NewReservoir creates a reservoir of capacity k.
func NewReservoir(k int, seed uint64) *Reservoir {
	if k < 1 {
		panic("sample: reservoir capacity must be >= 1")
	}
	return &Reservoir{k: k, items: make([][]byte, 0, k), rng: randx.New(seed), seed: seed}
}

// Add offers an item to the reservoir (the bytes are copied).
func (r *Reservoir) Add(item []byte) {
	r.n++
	cp := append([]byte(nil), item...)
	if len(r.items) < r.k {
		r.items = append(r.items, cp)
		return
	}
	j := r.rng.Intn(int(r.n))
	if j < r.k {
		r.items[j] = cp
	}
}

// AddString offers a string item.
func (r *Reservoir) AddString(item string) { r.Add([]byte(item)) }

// Update implements core.Updater.
func (r *Reservoir) Update(item []byte) { r.Add(item) }

// Sample returns the current sample (shared backing; callers treat it
// as read-only).
func (r *Reservoir) Sample() [][]byte { return r.items }

// N returns the number of items offered.
func (r *Reservoir) N() uint64 { return r.n }

// K returns the capacity.
func (r *Reservoir) K() int { return r.k }

// Merge combines another reservoir into this one so the result is a
// uniform sample of the union stream: each slot of the merged sample
// draws from the two reservoirs with probability proportional to their
// stream sizes, without replacement within each source.
func (r *Reservoir) Merge(other *Reservoir) error {
	if r.k != other.k {
		return fmt.Errorf("%w: reservoir capacities %d vs %d", core.ErrIncompatible, r.k, other.k)
	}
	total := r.n + other.n
	if total == 0 {
		return nil
	}
	// Shuffle copies of both samples, then draw slot by slot.
	mine := append([][]byte(nil), r.items...)
	theirs := append([][]byte(nil), other.items...)
	r.rng.Shuffle(len(mine), func(i, j int) { mine[i], mine[j] = mine[j], mine[i] })
	r.rng.Shuffle(len(theirs), func(i, j int) { theirs[i], theirs[j] = theirs[j], theirs[i] })
	out := make([][]byte, 0, r.k)
	nMine, nTheirs := r.n, other.n
	for len(out) < r.k && (len(mine) > 0 || len(theirs) > 0) {
		takeMine := false
		if len(theirs) == 0 {
			takeMine = true
		} else if len(mine) > 0 {
			takeMine = r.rng.Float64() < float64(nMine)/float64(nMine+nTheirs)
		}
		if takeMine {
			out = append(out, mine[0])
			mine = mine[1:]
			if nMine > 0 {
				nMine--
			}
		} else {
			out = append(out, theirs[0])
			theirs = theirs[1:]
			if nTheirs > 0 {
				nTheirs--
			}
		}
	}
	r.items = out
	r.n = total
	return nil
}

// MarshalBinary serializes the reservoir.
func (r *Reservoir) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagReservoir, 1)
	w.U32(uint32(r.k))
	w.U64(r.seed)
	w.U64(r.n)
	w.U32(uint32(len(r.items)))
	for _, it := range r.items {
		w.BytesField(it)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary restores a reservoir serialized by MarshalBinary.
func (r *Reservoir) UnmarshalBinary(data []byte) error {
	rd, _, err := core.NewReader(data, core.TagReservoir)
	if err != nil {
		return err
	}
	k := int(rd.U32())
	seed := rd.U64()
	n := rd.U64()
	cnt := int(rd.U32())
	if rd.Err() != nil {
		return rd.Err()
	}
	if k < 1 || cnt > k {
		return fmt.Errorf("%w: reservoir k=%d items=%d", core.ErrCorrupt, k, cnt)
	}
	items := make([][]byte, cnt)
	for i := range items {
		items[i] = rd.BytesField()
	}
	if err := rd.Done(); err != nil {
		return err
	}
	r.k, r.seed, r.n, r.items = k, seed, n, items
	r.rng = randx.New(seed ^ 0x526573)
	return nil
}

// WeightedReservoir maintains a weighted sample of k items
// (Efraimidis–Spirakis A-ES): each item draws key u^(1/w); the k
// largest keys are kept, so an item's inclusion probability is
// proportional to its weight in the appropriate exponential-race sense.
type WeightedReservoir struct {
	k    int
	n    uint64
	keys []float64 // min-heap of keys
	vals [][]byte
	rng  *randx.RNG
	seed uint64
}

// NewWeightedReservoir creates a weighted reservoir of capacity k.
func NewWeightedReservoir(k int, seed uint64) *WeightedReservoir {
	if k < 1 {
		panic("sample: weighted reservoir capacity must be >= 1")
	}
	return &WeightedReservoir{k: k, rng: randx.New(seed), seed: seed}
}

// Add offers an item with the given positive weight.
func (r *WeightedReservoir) Add(item []byte, weight float64) {
	if weight <= 0 {
		panic("sample: weighted reservoir requires positive weight")
	}
	r.n++
	key := math.Pow(r.rng.Float64Open(), 1/weight)
	if len(r.keys) < r.k {
		r.push(key, append([]byte(nil), item...))
		return
	}
	if key > r.keys[0] {
		r.keys[0] = key
		r.vals[0] = append([]byte(nil), item...)
		r.siftDown(0)
	}
}

func (r *WeightedReservoir) push(key float64, val []byte) {
	r.keys = append(r.keys, key)
	r.vals = append(r.vals, val)
	i := len(r.keys) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if r.keys[parent] <= r.keys[i] {
			break
		}
		r.keys[parent], r.keys[i] = r.keys[i], r.keys[parent]
		r.vals[parent], r.vals[i] = r.vals[i], r.vals[parent]
		i = parent
	}
}

func (r *WeightedReservoir) siftDown(i int) {
	n := len(r.keys)
	for {
		l, rt := 2*i+1, 2*i+2
		smallest := i
		if l < n && r.keys[l] < r.keys[smallest] {
			smallest = l
		}
		if rt < n && r.keys[rt] < r.keys[smallest] {
			smallest = rt
		}
		if smallest == i {
			return
		}
		r.keys[i], r.keys[smallest] = r.keys[smallest], r.keys[i]
		r.vals[i], r.vals[smallest] = r.vals[smallest], r.vals[i]
		i = smallest
	}
}

// Sample returns the current weighted sample.
func (r *WeightedReservoir) Sample() [][]byte { return r.vals }

// N returns the number of items offered.
func (r *WeightedReservoir) N() uint64 { return r.n }

// K returns the capacity.
func (r *WeightedReservoir) K() int { return r.k }

// MarshalBinary serializes the weighted reservoir: shape, seed, offer
// count, then the (key, item) pairs in heap-array order so a decoded
// instance resumes with an identical heap layout.
func (r *WeightedReservoir) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagWeightedReservoir, 1)
	w.U32(uint32(r.k))
	w.U64(r.seed)
	w.U64(r.n)
	w.U32(uint32(len(r.keys)))
	for i, key := range r.keys {
		w.F64(key)
		w.BytesField(r.vals[i])
	}
	return w.Bytes(), nil
}

// UnmarshalBinary restores a weighted reservoir serialized by
// MarshalBinary. The RNG restarts from the stored seed (like the
// plain reservoir, the sample stays valid; the random stream is not
// part of the state).
func (r *WeightedReservoir) UnmarshalBinary(data []byte) error {
	rd, _, err := core.NewReaderVersioned(data, core.TagWeightedReservoir, 1)
	if err != nil {
		return err
	}
	k := int(rd.U32())
	seed := rd.U64()
	n := rd.U64()
	cnt := rd.Count(12) // 8-byte key + 4-byte length prefix minimum
	if rd.Err() != nil {
		return rd.Err()
	}
	if k < 1 || cnt > k {
		return fmt.Errorf("%w: weighted reservoir k=%d items=%d", core.ErrCorrupt, k, cnt)
	}
	keys := make([]float64, cnt)
	vals := make([][]byte, cnt)
	for i := range keys {
		keys[i] = rd.F64()
		vals[i] = rd.BytesField()
	}
	if err := rd.Done(); err != nil {
		return err
	}
	r.k, r.seed, r.n, r.keys, r.vals = k, seed, n, keys, vals
	r.rng = randx.New(seed ^ 0x575265)
	return nil
}
