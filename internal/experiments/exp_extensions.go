package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/quantile"
	"repro/internal/randx"
	"repro/internal/sample"
	"repro/internal/window"
)

func init() {
	register("E17", "Relative-error quantiles (REQ) vs additive-error KLL", runE17)
	register("E18", "TensorSketch polynomial kernel approximation", runE18)
	register("E19", "Matrix sketching: Frequent Directions and AMM", runE19)
	register("E20", "Sliding windows: exponential histograms and windowed HLL", runE20)
	register("E21", "Lp samplers: empirical sampling distribution", runE21)
}

// runE17 reproduces the PODS 2021 best paper's headline: rank error
// relative to the distance from the top, where additive sketches decay
// to uselessness.
func runE17() *Result {
	const n = 500000
	rng := randx.New(163)
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Exp(rng.Normal() * 2)
	}
	ref := append([]float64(nil), data...)
	sort.Float64s(ref)

	req := quantile.NewREQ(32, 167)
	kll := quantile.NewKLL(200, 173)
	for _, v := range data {
		req.Add(v)
		kll.Add(v)
	}
	tailErr := func(est float64, q float64) float64 {
		i := sort.SearchFloat64s(ref, est)
		for i < len(ref) && ref[i] == est {
			i++
		}
		target := q * float64(n)
		tail := float64(n) - target
		if tail < 1 {
			tail = 1
		}
		return math.Abs(float64(i)-target) / tail
	}
	tbl := core.NewTable("E17: tail-normalized rank error |rank−qn|/(n−qn), lognormal n=500k",
		"q", "REQ(k=32)", "KLL(k=200)")
	for _, q := range []float64{0.9, 0.99, 0.999, 0.9999, 0.99999} {
		tbl.AddRow(q, tailErr(req.Quantile(q), q), tailErr(kll.Quantile(q), q))
	}
	return &Result{
		ID:     "E17",
		Title:  "Relative-error streaming quantiles",
		Claim:  "The paper lists 'Relative Error streaming quantiles' (PODS 2021 best paper): rank error proportional to the distance from the favored end.",
		Tables: []*core.Table{tbl},
		Notes: []string{
			fmt.Sprintf("Space: REQ %d bytes, KLL %d bytes.", req.SizeBytes(), kll.SizeBytes()),
			"KLL's additive eps*n error, normalized by the shrinking tail, blows up as q -> 1; REQ's stays flat.",
		},
	}
}

// runE18 sweeps the TensorSketch output dimension and reports the
// polynomial-kernel estimation error for degrees 2 and 3.
func runE18() *Result {
	const d = 64
	tbl := core.NewTable("E18: TensorSketch mean relerr of (<x,y>)^p, 40 pairs",
		"k", "degree 2", "degree 3")
	rng := randx.New(179)
	type pair struct{ x, y []float64 }
	pairs := make([]pair, 40)
	for i := range pairs {
		x := make([]float64, d)
		y := make([]float64, d)
		for j := 0; j < d; j++ {
			x[j] = rng.Normal() / math.Sqrt(d)
			y[j] = x[j] + 0.2*rng.Normal()/math.Sqrt(d)
		}
		pairs[i] = pair{x, y}
	}
	meanErr := func(k, degree int) float64 {
		var total float64
		for i, p := range pairs {
			ts := kernel.NewTensorSketch(d, k, degree, uint64(i)+uint64(k*degree))
			got := kernel.Dot(ts.Apply(p.x), ts.Apply(p.y))
			total += core.RelErr(got, kernel.PolyKernel(p.x, p.y, degree))
		}
		return total / float64(len(pairs))
	}
	for _, k := range []int{256, 1024, 4096} {
		tbl.AddRow(k, meanErr(k, 2), meanErr(k, 3))
	}
	return &Result{
		ID:     "E18",
		Title:  "Kernel approximation via TensorSketch",
		Claim:  "§3: sketching can 'incorporate kernel transformations' (Pham & Pagh, cite [40]) — the Count-Sketch of a tensor power computed by FFT.",
		Tables: []*core.Table{tbl},
	}
}

// runE19 verifies the Frequent Directions covariance bound across
// sketch sizes, and the AMM error decay.
func runE19() *Result {
	const n, d = 600, 48
	rng := randx.New(181)
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, d)
		for k := 0; k < 5; k++ {
			coeff := rng.Normal() * float64(5-k)
			for j := 0; j < d; j++ {
				a[i][j] += coeff * math.Sin(float64(k*d+j))
			}
		}
		for j := 0; j < d; j++ {
			a[i][j] += 0.1 * rng.Normal()
		}
	}
	tbl := core.NewTable("E19: Frequent Directions ||AᵀA − BᵀB||₂, n=600, d=48",
		"l", "measured", "bound 2||A||_F²/l", "within bound")
	for _, l := range []int{8, 16, 32} {
		f := matrix.NewFD(l, d, 1)
		for _, row := range a {
			f.Append(row)
		}
		diff := f.CovarianceDiff(a)
		bound := f.CovarianceErrorBound()
		tbl.AddRow(l, diff, bound, fmt.Sprint(diff <= bound))
	}

	amm := core.NewTable("E19b: AMM ||est − AᵀA||_F vs sketch size (n=2000, d=12)",
		"k", "frobenius error")
	const n2, d2 = 2000, 12
	b := make([][]float64, n2)
	for i := range b {
		b[i] = make([]float64, d2)
		for j := range b[i] {
			b[i][j] = rng.Normal()
		}
	}
	exact := make([][]float64, d2)
	for i := range exact {
		exact[i] = make([]float64, d2)
	}
	for r := 0; r < n2; r++ {
		for i := 0; i < d2; i++ {
			for j := 0; j < d2; j++ {
				exact[i][j] += b[r][i] * b[r][j]
			}
		}
	}
	for _, k := range []int{64, 256, 1024} {
		m := matrix.NewAMM(k, d2, d2, 191)
		for r := 0; r < n2; r++ {
			m.Append(b[r], b[r])
		}
		got := m.Product()
		var num float64
		for i := 0; i < d2; i++ {
			for j := 0; j < d2; j++ {
				dd := got[i][j] - exact[i][j]
				num += dd * dd
			}
		}
		amm.AddRow(k, math.Sqrt(num))
	}
	return &Result{
		ID:     "E19",
		Title:  "Matrix sketching",
		Claim:  "§3: 'sketching as a way to approximate expensive linear algebra operations, such as matrix multiplication' (Woodruff, cite [48]).",
		Tables: []*core.Table{tbl, amm},
	}
}

// runE20 scores the exponential histogram against exact sliding-window
// counts and the windowed HLL against exact windowed distinct counts.
func runE20() *Result {
	tbl := core.NewTable("E20: exponential histogram window counts (W=10000)",
		"k", "max relerr observed", "guarantee 1/k", "buckets")
	for _, k := range []int{4, 8, 16, 32} {
		h := window.NewEH(10000, k)
		events := map[uint64]uint64{}
		rng := randx.New(uint64(k) + 197)
		var maxErr float64
		buckets := 0
		for ts := uint64(1); ts <= 50000; ts++ {
			h.Tick(ts)
			if rng.BoolP(0.6) {
				h.Add()
				events[ts]++
			}
			if ts%977 == 0 {
				var want float64
				for ets, n := range events {
					if ets+10000 > ts {
						want += float64(n)
					}
				}
				if want > 0 {
					if e := core.RelErr(h.Count(), want); e > maxErr {
						maxErr = e
					}
				}
			}
		}
		buckets = h.BucketCount()
		tbl.AddRow(k, maxErr, 1.0/float64(k), buckets)
	}

	whll := core.NewTable("E20b: windowed HLL distinct (W=5000, 10 panes, p=12)",
		"phase", "estimate", "truth")
	w := window.NewWindowedHLL(5000, 10, 12, 199)
	for ts := uint64(1); ts <= 20000; ts++ {
		w.Tick(ts)
		w.AddUint64(ts - 1)
	}
	whll.AddRow("steady state (unique per tick)", w.Estimate(), 5000)
	w.Tick(100000)
	whll.AddRow("after silence", w.Estimate(), 0)
	return &Result{
		ID:     "E20",
		Title:  "Sliding-window sketches",
		Claim:  "§3 streaming era: network monitors care about the recent past; exponential histograms bound windowed counts within 1/k.",
		Tables: []*core.Table{tbl, whll},
	}
}

// runE21 measures the empirical sampling distribution of the Lp
// sampler against the exact |f|^p law.
func runE21() *Result {
	tbl := core.NewTable("E21: Lp sampler inclusion frequency, weights {1..5}, 2000 trials",
		"item weight", "p=1 measured", "p=1 exact", "p=2 measured", "p=2 exact")
	const domain = 5
	const trials = 2000
	counts1 := make([]int, domain)
	counts2 := make([]int, domain)
	for trial := 0; trial < trials; trial++ {
		s1 := sample.NewLpSampler(1, 256, 5, uint64(trial)+211)
		s2 := sample.NewLpSampler(2, 256, 5, uint64(trial)+100211)
		for i := uint64(0); i < domain; i++ {
			s1.Update(i, float64(i+1))
			s2.Update(i, float64(i+1))
		}
		if idx, _, ok := s1.Sample(domain); ok {
			counts1[idx]++
		}
		if idx, _, ok := s2.Sample(domain); ok {
			counts2[idx]++
		}
	}
	var sum1, sum2 float64
	for i := 0; i < domain; i++ {
		w := float64(i + 1)
		sum1 += w
		sum2 += w * w
	}
	for i := 0; i < domain; i++ {
		w := float64(i + 1)
		tbl.AddRow(i+1,
			float64(counts1[i])/trials, w/sum1,
			float64(counts2[i])/trials, w*w/sum2)
	}
	return &Result{
		ID:     "E21",
		Title:  "Lp sampling",
		Claim:  "The paper lists 'Tight bounds for Lp samplers' (PODS 2011, Test of Time 2021): sample an index with probability proportional to a monomial of its frequency.",
		Tables: []*core.Table{tbl},
		Notes:  []string{"Exact proportionality comes from the exponential race; sketch noise is the residual."},
	}
}
