package experiments

import (
	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/sample"
)

func init() {
	register("E22", "Compressed-sensing-style sparse recovery from linear measurements", runE22)
}

// runE22 validates the claim that JL-style dimensionality reduction
// "led to the development of … compressed sensing" (§2, cite [17]) in
// its discrete form: an s-sparse vector over a huge domain is exactly
// recoverable from O(s) linear measurements (the s-sparse recovery
// structure), and recovery degrades gracefully — not catastrophically —
// once the true support exceeds the design sparsity.
func runE22() *Result {
	tbl := core.NewTable("E22: exact recovery rate vs true support (design s=16, 40 trials, domain 2^32)",
		"true support", "full-recovery rate", "mean fraction recovered", "measurements (cells)")
	for _, support := range []int{4, 8, 16, 24, 32, 64} {
		fullRecoveries := 0
		var fracSum float64
		const trials = 40
		cells := 0
		for trial := 0; trial < trials; trial++ {
			sr := sample.NewSparseRecovery(16, uint64(trial)*31+uint64(support))
			rng := randx.New(uint64(trial) + 1000)
			truth := map[uint64]int64{}
			for len(truth) < support {
				idx := rng.Uint64() % (1 << 32)
				if _, ok := truth[idx]; ok {
					continue
				}
				w := int64(rng.Intn(100) - 50)
				if w == 0 {
					w = 1
				}
				truth[idx] = w
				sr.Update(idx, w)
			}
			got := sr.Recover()
			correct := 0
			for idx, w := range truth {
				if got[idx] == w {
					correct++
				}
			}
			fracSum += float64(correct) / float64(support)
			if correct == support {
				fullRecoveries++
			}
			cells = 16 * 2 * 4 // 2s cells × 4 rows
		}
		tbl.AddRow(support, float64(fullRecoveries)/trials, fracSum/trials, cells)
	}
	return &Result{
		ID:     "E22",
		Title:  "Sparse recovery / compressed sensing",
		Claim:  "§2: 'dimensionality reduction techniques led to the development of the areas of compressed sensing' (cite [17]) — s-sparse signals are exactly recoverable from O(s) linear measurements.",
		Tables: []*core.Table{tbl},
		Notes: []string{
			"Recovery is exact (weights included) up to the design sparsity and degrades gracefully past it.",
			"The same structure underlies the L0 sampler and the AGM graph sketch.",
		},
	}
}
