package experiments

import (
	"fmt"
	"math"

	"repro/internal/bloom"
	"repro/internal/cardinality"
	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/hashx"
)

// distinctCounter is the common query surface of the F0 sketches.
type distinctCounter interface {
	AddUint64(uint64)
	Estimate() float64
	SizeBytes() int
}

func init() {
	register("E1", "Morris counter: O(log log n) bits vs exact counter", runE1)
	register("E2", "Distinct counting ladder: FM vs LogLog vs HLL vs KMV", runE2)
	register("E3", "Bloom filter false positive rate vs theory", runE3)
	register("E8", "HLL++ small-cardinality accuracy vs raw HLL", runE8)
}

// runE1 validates §2's asymptotic space claim: Morris counts n events
// in O(log log n) bits where an exact binary counter needs log2(n),
// with a relative error governed by the base.
func runE1() *Result {
	tbl := core.NewTable("E1: approximate counting, 32 trials per row",
		"n", "exact bits", "morris bits", "ny bits(eps=.2)", "morris relerr", "ny relerr")
	const trials = 32
	for _, n := range []uint64{100, 10000, 1000000, 100000000, 10000000000} {
		var mBits, nyBits, mErr, nyErr float64
		for trial := 0; trial < trials; trial++ {
			m := counter.NewMorrisBase(1.1, uint64(trial)+1)
			ny := counter.NewNelsonYu(0.2, 0.1, uint64(trial)+1000)
			m.IncrementN(n)
			ny.IncrementN(n)
			mBits += float64(m.BitsUsed())
			nyBits += float64(ny.BitsUsed())
			mErr += core.RelErr(m.Count(), float64(n))
			nyErr += core.RelErr(ny.Count(), float64(n))
		}
		tbl.AddRow(n, counter.ExactBits(n), mBits/trials, nyBits/trials, mErr/trials, nyErr/trials)
	}
	return &Result{
		ID:     "E1",
		Title:  "Approximate counting space/accuracy",
		Claim:  "§2: Morris (1977) counts n events in O(log log n) bits; Nelson–Yu (PODS 2022) adds optimal (ε, δ) dependence.",
		Tables: []*core.Table{tbl},
		Notes: []string{
			"Exact bits grow as log2(n); Morris exponent bits grow as log2 log(n).",
			"Nelson–Yu repetitions buy the (ε, δ) guarantee at a log(1/δ) factor.",
		},
	}
}

// runE2 traces the F0 lineage the paper narrates: FM's O(log n)-bit
// bitmaps, LogLog's O(log log n)-bit registers, HLL's better constant
// (1.04/√m vs 1.30/√m), and KMV for comparison, at matched substream
// counts.
func runE2() *Result {
	tbl := core.NewTable("E2: distinct counting at m=4096 substreams, n=1e6 distinct, 8 trials",
		"sketch", "bytes", "mean relerr", "theory stderr")
	const n = 1000000
	const trials = 8
	type mk struct {
		name   string
		build  func(seed uint64) distinctCounter
		theory float64
	}
	sketches := []mk{
		{"FM/PCSA", func(s uint64) distinctCounter { return cardinality.NewFM(4096, s) }, 0.78 / math.Sqrt(4096)},
		{"LogLog", func(s uint64) distinctCounter { return cardinality.NewLogLog(12, s) }, 1.30 / math.Sqrt(4096)},
		{"HLL", func(s uint64) distinctCounter { return cardinality.NewHLL(12, s) }, 1.04 / math.Sqrt(4096)},
		{"KMV", func(s uint64) distinctCounter { return cardinality.NewKMV(4096, s) }, 1 / math.Sqrt(4094)},
	}
	for _, s := range sketches {
		var totalErr float64
		var bytes int
		for trial := 0; trial < trials; trial++ {
			sk := s.build(uint64(trial) + 1)
			for i := 0; i < n; i++ {
				sk.AddUint64(uint64(i) + uint64(trial)<<40)
			}
			totalErr += core.RelErr(sk.Estimate(), n)
			bytes = sk.SizeBytes()
		}
		tbl.AddRow(s.name, bytes, totalErr/trials, s.theory)
	}

	sweep := core.NewTable("E2b: HLL error vs precision (n=1e6, 8 trials)",
		"p", "registers", "bytes", "mean relerr", "1.04/sqrt(m)")
	for _, p := range []uint8{8, 10, 12, 14} {
		var totalErr float64
		var bytes int
		const trials = 8
		for trial := 0; trial < trials; trial++ {
			h := cardinality.NewHLL(p, uint64(trial)+1)
			for i := 0; i < n; i++ {
				h.AddUint64(uint64(i) + uint64(trial)<<40)
			}
			totalErr += core.RelErr(h.Estimate(), n)
			bytes = h.SizeBytes()
		}
		m := 1 << p
		sweep.AddRow(p, m, bytes, totalErr/trials, 1.04/math.Sqrt(float64(m)))
	}
	return &Result{
		ID:     "E2",
		Title:  "Distinct-counting space/accuracy ladder",
		Claim:  "§2: LogLog reduced per-substream space from log n to log log n bits; HLL 'further squeezed the space cost'; error ≈ 1.04/√m.",
		Tables: []*core.Table{tbl, sweep},
	}
}

// runE3 sweeps bits-per-key and checks the realized Bloom false
// positive rate against (1 − e^{−kn/m})^k.
func runE3() *Result {
	tbl := core.NewTable("E3: Bloom filter FPR, n=50k keys, 200k probes",
		"bits/key", "k", "measured FPR", "theory FPR")
	const n = 50000
	const probes = 200000
	for _, bitsPerKey := range []int{4, 6, 8, 10, 12, 16} {
		m := uint64(bitsPerKey * n)
		k := int(math.Round(float64(bitsPerKey) * math.Ln2))
		if k < 1 {
			k = 1
		}
		f := bloom.New(m, k, 7)
		for i := 0; i < n; i++ {
			f.Add(hashx.Uint64Bytes(uint64(i)))
		}
		fp := 0
		for i := 0; i < probes; i++ {
			if f.Contains(hashx.Uint64Bytes(uint64(n + i))) {
				fp++
			}
		}
		tbl.AddRow(bitsPerKey, k, float64(fp)/probes, bloom.TheoreticalFPR(m, k, n))
	}
	return &Result{
		ID:     "E3",
		Title:  "Bloom filter FPR vs theory",
		Claim:  "§2: the Bloom filter answers membership with space linear in the set size 'with a small constant of proportionality'.",
		Tables: []*core.Table{tbl},
	}
}

// runE8 reproduces the Heule et al. small-cardinality fix: raw HLL is
// badly biased below ~5m/2 while the corrected estimate (linear
// counting / sparse HLL++) stays accurate.
func runE8() *Result {
	tbl := core.NewTable("E8: small-cardinality bias at p=14 (m=16384), 8 trials",
		"n", "raw HLL relerr", "HLL (lin.count) relerr", "HLL++ relerr", "HLL++ sparse?")
	const trials = 8
	for _, n := range []int{100, 1000, 5000, 20000, 40000, 100000, 1000000} {
		var rawErr, corrErr, ppErr float64
		sparse := true
		for trial := 0; trial < trials; trial++ {
			h := cardinality.NewHLL(14, uint64(trial)+1)
			pp := cardinality.NewHLLPP(14, uint64(trial)+1)
			for i := 0; i < n; i++ {
				v := uint64(i) + uint64(trial)<<40
				h.AddUint64(v)
				pp.AddUint64(v)
			}
			rawErr += core.RelErr(h.RawEstimate(), float64(n))
			corrErr += core.RelErr(h.Estimate(), float64(n))
			ppErr += core.RelErr(pp.Estimate(), float64(n))
			sparse = sparse && pp.IsSparse()
		}
		tbl.AddRow(n, rawErr/trials, corrErr/trials, ppErr/trials, fmt.Sprint(sparse))
	}
	return &Result{
		ID:     "E8",
		Title:  "HLL++ engineering: small-cardinality accuracy",
		Claim:  "§2: Google's work 'optimize[d] the HLL algorithm … improving accuracy at small cardinalities' (Heule et al. 2013).",
		Tables: []*core.Table{tbl},
		Notes: []string{
			"Raw HLL shows the characteristic low-range bias; the corrected and sparse estimators remove it.",
			"Substitution: empirical bias tables replaced by linear-counting/sparse regime switching (DESIGN.md §3).",
		},
	}
}
