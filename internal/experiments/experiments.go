// Package experiments implements the reproduction's evaluation: one
// runner per experiment in DESIGN.md §2 (E1…E24 plus ablations), each
// producing the table(s) recorded in EXPERIMENTS.md. The paper being a
// survey, each experiment validates one of its inline quantitative
// claims rather than copying a numbered figure; the mapping from claim
// to experiment is the table in DESIGN.md.
//
// All experiments are deterministic under fixed seeds and sized to run
// in seconds on a laptop. cmd/sketchbench runs them from the command
// line; bench_test.go wraps each in a testing.B benchmark.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Claim  string // the paper claim being validated
	Tables []*core.Table
	Notes  []string
}

// runner produces a result; registered in the table below.
type runner struct {
	id    string
	title string
	run   func() *Result
}

var registry []runner

func register(id, title string, run func() *Result) {
	registry = append(registry, runner{id: id, title: title, run: run})
}

// idRank orders "E1" < "E4" < "E4a" < "E4b" < "E10" numerically with
// ablation suffixes after their base experiment.
func idRank(id string) (int, string) {
	num := 0
	i := 1 // skip the leading 'E'
	for i < len(id) && id[i] >= '0' && id[i] <= '9' {
		num = num*10 + int(id[i]-'0')
		i++
	}
	return num, id[i:]
}

func sortRegistry() {
	sort.Slice(registry, func(i, j int) bool {
		ni, si := idRank(registry[i].id)
		nj, sj := idRank(registry[j].id)
		if ni != nj {
			return ni < nj
		}
		return si < sj
	})
}

// IDs returns all experiment ids in canonical order.
func IDs() []string {
	sortRegistry()
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.id
	}
	return out
}

// Run executes one experiment by id.
func Run(id string) (*Result, error) {
	for _, r := range registry {
		if r.id == id {
			return r.run(), nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
}

// RunAll executes every experiment in order.
func RunAll() []*Result {
	sortRegistry()
	out := make([]*Result, 0, len(registry))
	for _, r := range registry {
		out = append(out, r.run())
	}
	return out
}

// Titles returns id → registered title for listing.
func Titles() map[string]string {
	out := make(map[string]string, len(registry))
	for _, r := range registry {
		out[r.id] = r.title
	}
	return out
}

// sortedKeys is a small helper for deterministic table rows.
func sortedKeys[K ~int | ~uint64, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
