package experiments

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/server/client"
)

func init() {
	register("E25", "sketchd ingest throughput over HTTP (clients × batch size)", runE25)
}

// runE25 is the sketchd loadgen: it stands up the HTTP serving layer
// (in-process on a loopback listener unless SKETCHD_ADDR points at an
// external daemon) and drives batched newline-delimited ingest into a
// sharded-HLL sketch from 1–16 concurrent clients, reporting aggregate
// adds/sec. This is the paper's "pathway to impact" claim made
// operational: mergeable summaries behind a service ingesting heavy
// streams, throughput scaling with client concurrency because the hot
// path is the uncontended sharded writer, not a global lock.
func runE25() *Result {
	base := os.Getenv("SKETCHD_ADDR")
	var shutdown func()
	if base == "" {
		var err error
		base, shutdown, err = startLocalSketchd()
		if err != nil {
			return &Result{
				ID:    "E25",
				Title: "sketchd ingest throughput over HTTP",
				Notes: []string{fmt.Sprintf("failed to start local sketchd: %v", err)},
			}
		}
		defer shutdown()
	}

	const itemsPerClient = 1 << 17 // 131072 adds per client per config
	tbl := core.NewTable("sketchd batched ingest, sharded HLL (loopback HTTP)",
		"clients", "batch", "requests", "adds", "wall_ms", "adds_per_sec")

	var peak float64
	var peakClients int
	for _, clients := range []int{1, 2, 4, 8, 16} {
		for _, batch := range []int{100, 1000} {
			name := fmt.Sprintf("e25-c%d-b%d", clients, batch)
			cl := client.New(base)
			if err := cl.Create(name, server.CreateRequest{Type: "hll", P: 14, Seed: 1}); err != nil {
				return &Result{ID: "E25", Title: "sketchd ingest throughput over HTTP",
					Notes: []string{fmt.Sprintf("create: %v", err)}}
			}
			adds, reqs, elapsed := driveIngest(base, name, clients, batch, itemsPerClient)
			rate := float64(adds) / elapsed.Seconds()
			if rate > peak {
				peak, peakClients = rate, clients
			}
			tbl.AddRow(clients, batch, reqs, adds,
				float64(elapsed.Milliseconds()), rate)
			cl.Delete(name)
		}
	}

	notes := []string{
		fmt.Sprintf("peak aggregate ingest %.3g adds/sec at %d clients", peak, peakClients),
		"each client POSTs newline-delimited batches over keep-alive HTTP; the server splits batches with pooled buffers and folds them into the sharded HLL under one lock acquisition per batch",
	}
	if peak >= 1e6 {
		notes = append(notes, "acceptance: ≥1M adds/sec aggregate on batched ingestion — met")
	} else {
		notes = append(notes, "acceptance: ≥1M adds/sec aggregate NOT met on this host")
	}
	return &Result{
		ID:     "E25",
		Title:  "sketchd ingest throughput over HTTP (clients × batch size)",
		Claim:  "sketch services ingest heavy distributed streams cheaply: updates are fast, summaries stay small, and merge makes per-node sketches composable (§4 pathways to impact)",
		Tables: []*core.Table{tbl},
		Notes:  notes,
	}
}

// driveIngest runs `clients` goroutines, each sending itemsPerClient
// unique items in batches of `batch` lines, and returns total adds,
// total requests, and wall time.
func driveIngest(base, name string, clients, batch, itemsPerClient int) (adds, reqs int, elapsed time.Duration) {
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := client.New(base)
			buf := make([]byte, 0, batch*16)
			sent := 0
			for sent < itemsPerClient {
				buf = buf[:0]
				for i := 0; i < batch && sent < itemsPerClient; i++ {
					// Unique per client so the union is clients × itemsPerClient.
					buf = strconv.AppendInt(buf, int64(c)<<32|int64(sent), 10)
					buf = append(buf, '\n')
					sent++
				}
				if err := cl.AddBatch(name, buf); err != nil {
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed = time.Since(start)
	adds = clients * itemsPerClient
	reqs = clients * (itemsPerClient + batch - 1) / batch
	return adds, reqs, elapsed
}

// startLocalSketchd serves internal/server on an ephemeral loopback
// port, returning the base URL and a shutdown func.
func startLocalSketchd() (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: server.New().Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	return base, func() { hs.Close() }, nil
}
