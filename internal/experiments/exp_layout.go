package experiments

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/bloom"
	"repro/internal/cardinality"
	"repro/internal/core"
	"repro/internal/frequency"
	"repro/internal/hashx"
	"repro/internal/mergex"
)

func init() {
	register("E28", "cache-conscious layouts and batch-pipelined ingest", runE28)
}

// runE28 measures the memory-layout work at sizes where it matters:
// every structure is sized well past L2, so a scattered probe pattern
// pays a cache miss per probe and the layout changes (one 512-bit block
// per Bloom item, d Count-Min rows fused into adjacent cache lines,
// two-phase hash-then-update batch loops) convert k misses per update
// into one or two. The committed BENCH_2.json tracks the same paths at
// L2-resident sizes; this experiment is the >L2 complement, where the
// speedups are the point of the design.
//
// The Bloom layout comparison runs twice. The speed table sizes both
// filters past even a large server L3 (~292 MiB), where every probe is
// a genuine memory miss — Add cost is independent of fill, so timing
// insert passes into a mostly-empty filter of that capacity measures
// exactly the per-layout miss count. The FPR/query table runs at design
// load (n inserted ≈ capacity), because false-positive rate and
// early-exit Contains behavior only mean anything at the load the
// filter was sized for.
//
// Blocked Bloom trades FPR for locality: confining an item's k bits to
// one block adds a Poisson block-load penalty over the flat filter's
// (1-e^{-kn/m})^k. The FPR table reports both measured rates against
// both theoretical curves — the penalty is real, bounded, and priced.
func runE28() *Result {
	const (
		nItems   = 4_000_000   // inserted keys; sizes every filter well past L2
		bigItems = 256_000_000 // Bloom speed-table capacity: ~292 MiB filters, past any L3
		nProbes  = 500_000     // negative membership probes for measured FPR
		fpr      = 0.01
		cmWidth  = 1 << 20 // 1Mi counters/row × 5 rows × 8B = 40 MiB
		cmDepth  = 5
		pipeCMW  = 1 << 23   // pipelining-table Count-Min: 8Mi × 5 × 8B = 320 MiB, past L3
		keysN    = 2_000_000 // byte keys for the full-ingest pipelining table
		hllP     = 16        // 64 KiB registers per shard
		shards   = 64
		perShard = 20_000
	)

	// Pre-hash every key once so the timed loops measure memory
	// behavior, not Murmur3 throughput: h1s/h2s feed the Bloom paths,
	// h1s alone feeds Count-Min and HLL.
	h1s := make([]uint64, nItems)
	h2s := make([]uint64, nItems)
	for i := range h1s {
		h1s[i] = hashx.HashUint64(uint64(i), 0xE28)
		h2s[i] = hashx.DeriveH2(h1s[i])
	}

	// Layout speed past L3: Add the same pre-hashed keys into filters
	// sized for bigItems. Fill level doesn't change Add's work (k
	// unconditional bit-ORs either way), so 4M inserts into a 292 MiB
	// filter time the miss pattern without paying 256M inserts of wall
	// clock. Contains is deliberately absent here: on an underloaded
	// filter the standard layout early-exits on the first zero bit,
	// which flatters it in a way no loaded filter would see.
	bigStd := bloom.NewWithEstimates(bigItems, fpr, 1)
	bigBlk := bloom.NewBlockedWithEstimates(bigItems, fpr, 1)
	bigStdAdd := warmNs(nItems, func() {
		for i := range h1s {
			bigStd.AddHash(h1s[i], h2s[i])
		}
	})
	bigBlkAdd := warmNs(nItems, func() {
		for i := range h1s {
			bigBlk.AddHash(h1s[i], h2s[i])
		}
	})
	bigMiB := float64(bigStd.M()) / 8 / (1 << 20)
	bigSpeedTbl := core.NewTable(
		fmt.Sprintf("Bloom layout Add speed, filters ~%.0f MiB (past L3; keys pre-hashed)", bigMiB),
		"layout", "mib", "ns_per_add", "add_speedup")
	bigSpeedTbl.AddRow("standard", float64(bigStd.M())/8/(1<<20), bigStdAdd, 1.0)
	bigSpeedTbl.AddRow("blocked", float64(bigBlk.M())/8/(1<<20), bigBlkAdd, bigStdAdd/bigBlkAdd)
	bloomSpeedup := bigStdAdd / bigBlkAdd
	bigStd, bigBlk = nil, nil // release ~600 MiB before the rest of the run

	std := bloom.NewWithEstimates(nItems, fpr, 1)
	blk := bloom.NewBlockedWithEstimates(nItems, fpr, 1)

	stdAdd := warmNs(nItems, func() {
		for i := range h1s {
			std.AddHash(h1s[i], h2s[i])
		}
	})
	blkAdd := warmNs(nItems, func() {
		for i := range h1s {
			blk.AddHash(h1s[i], h2s[i])
		}
	})
	sink := false
	stdContains := warmNs(nItems, func() {
		for i := range h1s {
			sink = std.ContainsHash(h1s[i], h2s[i]) != sink
		}
	})
	blkContains := warmNs(nItems, func() {
		for i := range h1s {
			sink = blk.ContainsHash(h1s[i], h2s[i]) != sink
		}
	})
	_ = sink

	// Measured FPR over keys disjoint from the inserted set.
	stdFP, blkFP := 0, 0
	for i := 0; i < nProbes; i++ {
		h1 := hashx.HashUint64(uint64(nItems+i), 0xE28)
		h2 := hashx.DeriveH2(h1)
		if std.ContainsHash(h1, h2) {
			stdFP++
		}
		if blk.ContainsHash(h1, h2) {
			blkFP++
		}
	}
	stdBound := math.Pow(1-math.Exp(-float64(std.K())*float64(nItems)/float64(std.M())), float64(std.K()))
	blkBound := bloom.TheoreticalBlockedFPR(blk.M(), blk.K(), nItems)

	bloomTbl := core.NewTable(
		fmt.Sprintf("Bloom FPR and query at design load, n=%d fpr=%g (filters ~%.1f MiB)", nItems, fpr, float64(std.M())/8/(1<<20)),
		"layout", "mib", "ns_per_add", "ns_per_contains", "add_speedup", "measured_fpr", "theoretical_fpr")
	bloomTbl.AddRow("standard", float64(std.M())/8/(1<<20), stdAdd, stdContains, 1.0,
		float64(stdFP)/nProbes, stdBound)
	bloomTbl.AddRow("blocked", float64(blk.M())/8/(1<<20), blkAdd, blkContains, stdAdd/blkAdd,
		float64(blkFP)/nProbes, blkBound)

	// Count-Min layouts: the same d=5 updates against row-major (d
	// scattered lines) and fused (d adjacent lines in one block).
	cmRow := frequency.NewCountMin(cmWidth, cmDepth, 1)
	cmFused := frequency.NewCountMinFused(cmWidth, cmDepth, 1)
	rowAdd := warmNs(nItems, func() {
		for _, h := range h1s {
			cmRow.AddHash(h, 1)
		}
	})
	fusedAdd := warmNs(nItems, func() {
		for _, h := range h1s {
			cmFused.AddHash(h, 1)
		}
	})
	var est uint64
	rowEst := warmNs(nItems, func() {
		for _, h := range h1s {
			est += cmRow.EstimateUint64(h)
		}
	})
	fusedEst := warmNs(nItems, func() {
		for _, h := range h1s {
			est += cmFused.EstimateUint64(h)
		}
	})
	_ = est

	cmTbl := core.NewTable(
		fmt.Sprintf("Count-Min layouts, width=%d depth=%d (%.0f MiB, past L2)", cmWidth, cmDepth, float64(cmWidth*cmDepth*8)/(1<<20)),
		"layout", "ns_per_add", "ns_per_estimate", "add_speedup", "estimate_speedup")
	cmTbl.AddRow("row-major", rowAdd, rowEst, 1.0, 1.0)
	cmTbl.AddRow("fused", fusedAdd, fusedEst, rowAdd/fusedAdd, rowEst/fusedEst)

	// Batch pipelining: the full byte-key ingest path — hash plus
	// update per item — scalar vs the two-phase AddBatch loops. The
	// structures are sized past L3 (like the Bloom speed table above)
	// so each update's misses are genuine memory misses; that is where
	// separating the ALU-pure hash phase from the memory-streaming
	// update phase pays, because the out-of-order window stays dense
	// with independent misses instead of spending itself on hash math.
	// HLL stays at p=16: its registers are cache-resident by design,
	// which is why its row is the control — near-1x, nothing to win.
	keys := make([][]byte, keysN)
	for i := range keys {
		keys[i] = hashx.Uint64Bytes(uint64(i) * 0x9e3779b97f4a7c15)
	}
	pipeTbl := core.NewTable(
		fmt.Sprintf("batch-pipelined AddBatch vs scalar Add, byte keys, past-L3 structures (Bloom ~%.0f MiB, Count-Min %.0f MiB; 256-item internal chunks)",
			bigMiB, float64(pipeCMW*cmDepth*8)/(1<<20)),
		"path", "scalar_ns_per_op", "batched_ns_per_op", "speedup")
	addPipeRow := func(name string, scalar, batched func()) float64 {
		s := warmNs(keysN, scalar)
		p := warmNs(keysN, batched)
		pipeTbl.AddRow(name, s, p, s/p)
		return s / p
	}
	std2, std3 := bloom.NewWithEstimates(bigItems, fpr, 2), bloom.NewWithEstimates(bigItems, fpr, 2)
	addPipeRow("bloom.Add",
		func() {
			for _, k := range keys {
				std2.Add(k)
			}
		},
		func() { std3.AddBatch(keys) })
	std2, std3 = nil, nil
	blk2, blk3 := bloom.NewBlockedWithEstimates(bigItems, fpr, 2), bloom.NewBlockedWithEstimates(bigItems, fpr, 2)
	addPipeRow("blockedbloom.Add",
		func() {
			for _, k := range keys {
				blk2.Add(k)
			}
		},
		func() { blk3.AddBatch(keys) })
	blk2, blk3 = nil, nil
	cm2, cm3 := frequency.NewCountMin(pipeCMW, cmDepth, 2), frequency.NewCountMin(pipeCMW, cmDepth, 2)
	cmSpeedup := addPipeRow("countmin.Add",
		func() {
			for _, k := range keys {
				cm2.Add(k, 1)
			}
		},
		func() { cm3.AddBatch(keys) })
	cm2, cm3 = nil, nil
	hll2, hll3 := cardinality.NewHLL(hllP, 2), cardinality.NewHLL(hllP, 2)
	addPipeRow("hll.Add",
		func() {
			for _, k := range keys {
				hll2.Add(k)
			}
		},
		func() { hll3.AddBatch(keys) })

	// Parallel tree merge vs the serial fold, 64 HLL shards (4 MiB of
	// registers total). On a 1-core host the tree degrades to the
	// serial schedule; the speedup column is meaningful only when
	// GOMAXPROCS > 1.
	build := func() []*cardinality.HLL {
		items := make([]*cardinality.HLL, shards)
		for s := range items {
			items[s] = cardinality.NewHLL(hllP, 3)
			for i := 0; i < perShard; i++ {
				items[s].AddUint64(uint64(s*perShard + i))
			}
		}
		return items
	}
	serialItems, treeItems := build(), build()
	serialStart := time.Now()
	serialDst := serialItems[0]
	for _, src := range serialItems[1:] {
		if err := serialDst.Merge(src); err != nil {
			return &Result{ID: "E28", Title: "cache-conscious layouts and batch-pipelined ingest",
				Notes: []string{fmt.Sprintf("serial merge: %v", err)}}
		}
	}
	serialMs := float64(time.Since(serialStart).Microseconds()) / 1000
	treeStart := time.Now()
	treeDst, err := mergex.Tree(treeItems, (*cardinality.HLL).Merge)
	if err != nil {
		return &Result{ID: "E28", Title: "cache-conscious layouts and batch-pipelined ingest",
			Notes: []string{fmt.Sprintf("tree merge: %v", err)}}
	}
	treeMs := float64(time.Since(treeStart).Microseconds()) / 1000

	workers := runtime.GOMAXPROCS(0)
	mergeTbl := core.NewTable(
		fmt.Sprintf("tree vs serial fan-in, %d HLL shards p=%d (%d KiB/shard)", shards, hllP, (1<<hllP)/1024),
		"schedule", "wall_ms", "speedup", "workers", "estimate")
	mergeTbl.AddRow("serial fold", serialMs, 1.0, 1, serialDst.Estimate())
	mergeTbl.AddRow("parallel tree", treeMs, serialMs/treeMs, workers, treeDst.Estimate())

	notes := []string{
		fmt.Sprintf("blocked Bloom Add speedup over standard at ~%.0f MiB (> L2, past L3): %.2fx (acceptance ≥1.5x: %s)",
			bigMiB, bloomSpeedup, metStr(bloomSpeedup >= 1.5)),
		fmt.Sprintf("at the L3-resident design-load size (~%.1f MiB) the gap narrows to %.2fx — when both layouts fit in L3 the probe misses the blocking saves are cheap ones",
			float64(std.M())/8/(1<<20), stdAdd/blkAdd),
		fmt.Sprintf("batch-pipelined Count-Min ingest speedup over scalar: %.2fx (acceptance ≥1.5x: %s)",
			cmSpeedup, metStr(cmSpeedup >= 1.5)),
		fmt.Sprintf("blocked FPR %.4f vs blocked-theory %.4f (ratio %.2f) — the blocking penalty over the flat bound %.4f is predicted, not a bug",
			float64(blkFP)/nProbes, blkBound, float64(blkFP)/nProbes/blkBound, stdBound),
		"tree-merge estimates match the serial fold exactly (associative merges; same registers either way)",
	}
	if workers == 1 {
		notes = append(notes, "parallel tree merge speedup qualified: GOMAXPROCS=1 on this host, so the tree runs the serial schedule")
	}
	return &Result{
		ID:     "E28",
		Title:  "cache-conscious layouts and batch-pipelined ingest",
		Claim:  "sketch speed at scale is a memory-system property: the paper's production deployments (§3) work because updates touch O(1) cache lines, and layout — blocked Bloom filters, fused Count-Min rows, pipelined batches, parallel fan-in — is where that constant is won",
		Tables: []*core.Table{bigSpeedTbl, bloomTbl, cmTbl, pipeTbl, mergeTbl},
		Notes:  notes,
	}
}

// nsPerOp times fn once and returns wall nanoseconds per op for the n
// operations it performs.
func nsPerOp(n int, fn func()) float64 {
	start := time.Now()
	fn()
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

// warmNs runs fn once untimed — faulting in every page the workload
// touches and warming the TLB — then times three identical passes and
// keeps the fastest. Without the warm pass a fresh multi-MiB sketch
// charges its page faults to the first timed loop; without the
// min-of-reps, a noisy neighbor on a shared host charges its cache
// and memory-bus contention to whichever layout ran while it was
// active. The minimum estimates uncontended speed, which is what a
// layout comparison is after.
func warmNs(n int, fn func()) float64 {
	fn()
	best := nsPerOp(n, fn)
	for rep := 0; rep < 2; rep++ {
		if ns := nsPerOp(n, fn); ns < best {
			best = ns
		}
	}
	return best
}

func metStr(ok bool) string {
	if ok {
		return "met"
	}
	return "NOT met"
}
