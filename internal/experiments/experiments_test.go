package experiments

import (
	"strings"
	"testing"
)

func TestIDsOrderedAndComplete(t *testing.T) {
	ids := IDs()
	want := []string{"E1", "E2", "E3", "E4", "E4a", "E4b", "E5", "E5a",
		"E6", "E6a", "E7", "E7a", "E8", "E9", "E10", "E11", "E12", "E13",
		"E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21", "E22", "E23", "E24",
		"E25", "E27", "E28", "E29", "E30", "E31", "E32", "E33"}
	if len(ids) != len(want) {
		t.Fatalf("got %d experiments %v, want %d", len(ids), ids, len(want))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("ids[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
	titles := Titles()
	for _, id := range ids {
		if titles[id] == "" {
			t.Errorf("experiment %s has no title", id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("E999"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestCheapExperimentsProduceTables(t *testing.T) {
	// Run the fast experiments end to end and sanity-check the output
	// structure (the heavy ones run via cmd/sketchbench and benches).
	for _, id := range []string{"E1", "E3", "E5a", "E7a", "E11", "E12"} {
		res, err := Run(id)
		if err != nil {
			t.Fatal(err)
		}
		if res.ID != id || res.Claim == "" || len(res.Tables) == 0 {
			t.Errorf("%s: malformed result %+v", id, res)
		}
		for _, tbl := range res.Tables {
			out := tbl.String()
			if !strings.Contains(out, "##") || len(strings.Split(out, "\n")) < 4 {
				t.Errorf("%s: table too small:\n%s", id, out)
			}
		}
	}
}

func TestRunAllExperimentsEndToEnd(t *testing.T) {
	// The full evaluation (~30s): every experiment must complete and
	// produce well-formed tables. Skipped under -short.
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	results := RunAll()
	if len(results) != len(IDs()) {
		t.Fatalf("RunAll returned %d results for %d ids", len(results), len(IDs()))
	}
	for _, res := range results {
		if res.Claim == "" || res.Title == "" {
			t.Errorf("%s: missing claim or title", res.ID)
		}
		if len(res.Tables) == 0 {
			t.Errorf("%s: no tables", res.ID)
		}
		for _, tbl := range res.Tables {
			if len(strings.Split(strings.TrimSpace(tbl.String()), "\n")) < 4 {
				t.Errorf("%s: table %q has no data rows", res.ID, tbl.Title)
			}
		}
	}
}

func TestIDRank(t *testing.T) {
	n, s := idRank("E4b")
	if n != 4 || s != "b" {
		t.Errorf("idRank(E4b) = %d,%q", n, s)
	}
	n, s = idRank("E16")
	if n != 16 || s != "" {
		t.Errorf("idRank(E16) = %d,%q", n, s)
	}
}
