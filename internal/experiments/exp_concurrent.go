package experiments

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/concurrent"
	"repro/internal/core"
	"repro/internal/hashx"
)

func init() {
	register("E29", "core-local buffered ingest vs shared-atomic under multi-writer load", runE29)
}

// e29Items returns the per-measurement ingest size: 2M pre-hashed
// updates by default, overridable via E29_WRITER_ITEMS for CI smoke
// runs (the scaling *shape* survives smaller sizes; the absolute
// throughput numbers need the default).
func e29Items() int {
	if s := os.Getenv("E29_WRITER_ITEMS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 2_000_000
}

// e29WriterCounts sweeps powers of two up to GOMAXPROCS, always
// including GOMAXPROCS itself so the scaling endpoints are exact.
func e29WriterCounts(max int) []int {
	counts := []int{1}
	for w := 2; w < max; w *= 2 {
		counts = append(counts, w)
	}
	if max > 1 {
		counts = append(counts, max)
	}
	return counts
}

// e29Measure times one multi-writer ingest configuration: setup builds
// a fresh sketch, each writer goroutine runs ingest over its shard
// after a common start barrier, and finish (inside the timed region)
// completes propagation. Wall time is min-of-3 after one warm rep;
// returns Mops/s.
func e29Measure(writers, total int, setup func(), ingest func(w, lo, hi int), finish func()) float64 {
	per := total / writers
	best := math.Inf(1)
	for rep := 0; rep <= 3; rep++ {
		setup()
		start := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				ingest(w, w*per, (w+1)*per)
			}(w)
		}
		t0 := time.Now()
		close(start)
		wg.Wait()
		if finish != nil {
			finish()
		}
		if el := time.Since(t0).Seconds(); rep > 0 && el < best {
			best = el
		}
	}
	return float64(writers*per) / best / 1e6
}

// runE29 measures what ROADMAP item 2 names as the current ceiling:
// shared-memory atomic wrappers serialize multi-writer ingest on hot
// cache lines (AtomicCountMin's shared total counter alone is one
// atomic RMW per update from every writer), so throughput flattens —
// or inverts — as writers are added. The local-buffer/global-
// propagation variants (Rinberg et al., "Fast Concurrent Data
// Sketches") give each writer a private bounded buffer and fold
// buffers into the global sketch from one propagator goroutine, so
// writer work is core-local and scaling tracks GOMAXPROCS. The price
// is relaxed reads with a quantified staleness bound, verified here
// and in the property tests.
//
// Timed regions include each writer's final flush and a full
// propagation sync, so buffered numbers are end-to-end (no hidden
// deferred work), and all variants consume identical pre-hashed
// updates (hashing is off the clock for both).
func runE29() *Result {
	const width, depth = 2048, 4 // the countmin serving default shape
	total := e29Items()
	maxW := runtime.GOMAXPROCS(0)
	counts := e29WriterCounts(maxW)

	hs := make([]uint64, total)
	for i := range hs {
		hs[i] = hashx.HashUint64(uint64(i), 0xE29)
	}

	// --- Count-Min: atomic vs buffered across the writer sweep.
	cmTbl := core.NewTable(
		fmt.Sprintf("Count-Min %dx%d multi-writer ingest, %d pre-hashed updates (Mops/s, min of 3)", width, depth, total),
		"writers", "atomic_mops", "buffered_mops", "buffered_vs_atomic")
	var atomicByW, bufferedByW []float64
	for _, w := range counts {
		var ac *concurrent.AtomicCountMin
		amops := e29Measure(w, total,
			func() { ac = concurrent.NewAtomicCountMin(width, depth, 1) },
			func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					ac.AddHash(hs[i], 1)
				}
			}, nil)

		var bc *concurrent.BufferedCountMin
		bmops := e29Measure(w, total,
			func() {
				if bc != nil {
					bc.Close()
				}
				bc = concurrent.NewBufferedCountMin(width, depth, 1)
			},
			func(_, lo, hi int) {
				wr := bc.Writer()
				for i := lo; i < hi; i++ {
					wr.AddHash(hs[i], 1)
				}
				wr.Flush()
			},
			func() { bc.Sync() })
		bc.Close()

		atomicByW = append(atomicByW, amops)
		bufferedByW = append(bufferedByW, bmops)
		cmTbl.AddRow(fmt.Sprintf("%d", w), amops, bmops, bmops/amops)
	}
	last := len(counts) - 1
	atomicScale := atomicByW[last] / atomicByW[0]
	bufferedScale := bufferedByW[last] / bufferedByW[0]

	// --- HLL and blocked Bloom: buffered vs the existing serving
	// variant at the sweep endpoints (1 writer and GOMAXPROCS writers).
	endpoints := []int{1, maxW}
	if maxW == 1 {
		endpoints = []int{1}
	}
	famTbl := core.NewTable(
		fmt.Sprintf("per-family scaling endpoints, %d updates (Mops/s; writers=1 vs writers=%d)", total, maxW),
		"variant", "mops_1w", "mops_maxw", "scaling")
	famRow := func(name string, run func(writers int) float64) {
		m1 := run(endpoints[0])
		mN := m1
		if len(endpoints) > 1 {
			mN = run(endpoints[1])
		}
		famTbl.AddRow(name, m1, mN, mN/m1)
	}
	famRow("hll_sharded(p=14)", func(writers int) float64 {
		var s *concurrent.ShardedHLL
		return e29Measure(writers, total,
			func() { s = concurrent.NewShardedHLL(maxW, 14, 1) },
			func(_, lo, hi int) {
				h := s.Handle()
				h.AddHashBatch(hs[lo:hi])
			}, nil)
	})
	famRow("hll_buffered(p=14)", func(writers int) float64 {
		var b *concurrent.BufferedHLL
		return e29Measure(writers, total,
			func() {
				if b != nil {
					b.Close()
				}
				b = concurrent.NewBufferedHLL(14, 1)
			},
			func(_, lo, hi int) {
				wr := b.Writer()
				for i := lo; i < hi; i++ {
					wr.AddHash(hs[i])
				}
				wr.Flush()
			},
			func() { b.Sync() })
	})
	const bloomBits = 1 << 23 // 1 MiB of filter: past L2, cheap to rebuild per rep
	famRow("blockedbloom_atomic(m=2^23)", func(writers int) float64 {
		var f *concurrent.AtomicBlockedBloom
		return e29Measure(writers, total,
			func() { f = concurrent.NewAtomicBlockedBloom(bloomBits, 7, 1) },
			func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					f.AddHash(hs[i], hashx.DeriveH2(hs[i]))
				}
			}, nil)
	})
	famRow("blockedbloom_buffered(m=2^23)", func(writers int) float64 {
		var f *concurrent.BufferedBlockedBloom
		return e29Measure(writers, total,
			func() {
				if f != nil {
					f.Close()
				}
				f = concurrent.NewBufferedBlockedBloom(bloomBits, 7, 1)
			},
			func(_, lo, hi int) {
				wr := f.Writer()
				for i := lo; i < hi; i++ {
					wr.AddHash(hs[i], hashx.DeriveH2(hs[i]))
				}
				wr.Flush()
			},
			func() { f.Sync() })
	})

	// --- Staleness: with W writers ingesting and never flushing, a
	// synced read misses exactly the items still in local buffers —
	// provably at most W × WriterBuffer. After an explicit flush the
	// count is exact.
	stWriters := maxW
	if stWriters < 4 {
		stWriters = 4
	}
	stPer := 50_000
	sc := concurrent.NewBufferedCountMin(width, depth, 1)
	var wg sync.WaitGroup
	handles := make([]*concurrent.BufferedCountMinWriter, stWriters)
	for i := range handles {
		handles[i] = sc.Writer()
	}
	for _, wr := range handles {
		wg.Add(1)
		go func(wr *concurrent.BufferedCountMinWriter) {
			defer wg.Done()
			for i := 0; i < stPer; i++ {
				wr.AddHash(hs[i%len(hs)], 1)
			}
		}(wr)
	}
	wg.Wait()
	sc.Sync() // propagation barrier; unflushed writer buffers stay local
	stTotal := uint64(stWriters * stPer)
	missing := stTotal - sc.N()
	bound := uint64(sc.StalenessBound())
	for _, wr := range handles {
		wr.Flush()
	}
	sc.Sync()
	exactN := sc.N()
	sc.Close()

	stTbl := core.NewTable(
		fmt.Sprintf("read staleness mid-ingest: %d writers x %d-item buffers, no flush", stWriters, sc.WriterBuffer()),
		"metric", "value")
	stTbl.AddRow("items ingested", float64(stTotal))
	stTbl.AddRow("visible before flush", float64(stTotal-missing))
	stTbl.AddRow("missing (buffered locally)", float64(missing))
	stTbl.AddRow("bound writers x buffer", float64(bound))
	stTbl.AddRow("visible after flush+sync", float64(exactN))

	notes := []string{
		fmt.Sprintf("buffered Count-Min scaling 1→%d writers: %.2fx (acceptance ≥3x on ≥4 cores: %s); atomic: %.2fx (expected <1.5x: %s)",
			maxW, bufferedScale, metStr(maxW < 4 || bufferedScale >= 3), atomicScale, metStr(maxW < 4 || atomicScale < 1.5)),
		fmt.Sprintf("mid-ingest staleness %d items ≤ bound %d (%s); exact after flush+sync: %s",
			missing, bound, metStr(missing <= bound), metStr(exactN == stTotal)),
		"buffered timings include final flush and full propagation sync — no deferred work is hidden off the clock",
	}
	if maxW == 1 {
		notes = append(notes, "scaling acceptance qualified: GOMAXPROCS=1 on this host, so every sweep degenerates to one writer and the atomic-vs-buffered gap shows only per-update overhead, not contention relief; run on a ≥4-core machine (or the CI scaling-smoke artifact) for the scaling claim")
	}
	return &Result{
		ID:     "E29",
		Title:  "core-local buffered ingest vs shared-atomic under multi-writer load",
		Claim:  "the paper's production pathway — sketches absorbing heavy multi-writer traffic — needs ingest that scales with cores: local-buffer/global-propagation writers (Fast Concurrent Data Sketches) keep updates core-local and scale near-linearly where shared-memory atomics serialize on hot cache lines, at the price of a quantified, bounded read staleness",
		Tables: []*core.Table{cmTbl, famTbl, stTbl},
		Notes:  notes,
	}
}
