package experiments

import (
	"errors"
	"fmt"
	"math"
	"os"
	"strconv"
	"time"

	"repro/internal/cardinality"
	"repro/internal/core"
	"repro/internal/robust"
	"repro/internal/robust/attack"
	"repro/internal/server"
	"repro/internal/server/client"
)

func init() {
	register("E32", "adversarial robustness: quadratic-query attack vs the defended estimator family and the sketchd query budget", runE32)
}

// e32Size returns an E32 size parameter, overridable by environment
// for CI smoke runs (the attack's interaction count scales with the
// sketch size, so CI runs a reduced k; the quadratic *shape* and the
// defense outcomes survive the reduction).
func e32Size(env string, def int) int {
	if s := os.Getenv(env); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

// runE32 mounts the Cohen–Nelson–Sarlós universal adaptive attack
// (internal/robust/attack) against the estimator family end to end:
//
//  1. undefended HLL and KMV are driven to >=2x relative error within
//     the quadratic interaction budget 64*k^2;
//  2. every defended wrapper — sketch-switching (HLL and KMV), noisy
//     release, Bernoulli subsampling, and the full robustdistinct
//     stack — keeps relative error bounded under the same attack;
//  3. an attack set hunted offline transfers to a live sketchd sketch
//     sharing the default seed (the threat the server guard exists
//     for), and the -query-budget guard cuts the online hunt off with
//     429 + Retry-After while ingest stays ungated;
//  4. the robustdistinct family serves honest traffic accurately over
//     HTTP through the registry bindings.
//
// E32_P overrides the HLL precision (default 10) and E32_K the KMV
// size (default 256) for reduced-size CI smoke runs.
func runE32() *Result {
	fail := func(format string, args ...any) *Result {
		return &Result{ID: "E32", Title: "adversarial robustness",
			Notes: []string{fmt.Sprintf(format, args...)}}
	}
	var notes []string
	var tables []*core.Table

	p := e32Size("E32_P", 10)
	kmvK := e32Size("E32_K", 256)
	hllK := 1 << p
	const seed = 1 // sketchd's default hash seed — the shared-randomness scenario
	cfg := attack.Config{Seed: 11}

	// ---- Part 1: the attack breaks undefended sketches in O(k^2) ----
	// MaskTarget 64*K (vs the 32*K default) drives truth to ~8x the
	// saturation floor — still a vanishing fraction of the 64*K^2
	// budget. The defended runs in part 2 face the same strength.
	cfg.K, cfg.MaskTarget = hllK, 64*hllK
	hllRes, err := attack.Run(attack.NewHLLTarget(uint8(p), seed), attack.NewHLLTarget(uint8(p), seed), cfg)
	if err != nil {
		return fail("attack vs raw hll: %v", err)
	}
	cfg.K, cfg.MaskTarget = kmvK, 64*kmvK
	kmvRes, err := attack.Run(attack.NewKMVTarget(kmvK, seed), attack.NewKMVTarget(kmvK, seed), cfg)
	if err != nil {
		return fail("attack vs raw kmv: %v", err)
	}

	tbl1 := core.NewTable("undefended sketches vs the universal adaptive attack",
		"sketch", "k", "probed", "masked", "interactions", "budget_64k2", "to_fail", "final_rel_err")
	tbl1.AddRow("hll", hllK, hllRes.Probed, hllRes.Masked, hllRes.Interactions,
		attack.QuadraticBudget(hllK), hllRes.InteractionsToFail, hllRes.FinalRelError)
	tbl1.AddRow("kmv", kmvK, kmvRes.Probed, kmvRes.Masked, kmvRes.Interactions,
		attack.QuadraticBudget(kmvK), kmvRes.InteractionsToFail, kmvRes.FinalRelError)
	tables = append(tables, tbl1)
	brokeHLL := hllRes.FinalRelError >= 2 && hllRes.InteractionsToFail > 0 &&
		hllRes.InteractionsToFail <= attack.QuadraticBudget(hllK)
	brokeKMV := kmvRes.FinalRelError >= 2 && kmvRes.InteractionsToFail > 0 &&
		kmvRes.InteractionsToFail <= attack.QuadraticBudget(kmvK)
	if brokeHLL && brokeKMV {
		notes = append(notes, fmt.Sprintf(
			"acceptance: attack drives raw hll to %.1fx and raw kmv to %.1fx relative error within the 64k^2 budget — met",
			hllRes.FinalRelError, kmvRes.FinalRelError))
	} else {
		notes = append(notes, fmt.Sprintf(
			"acceptance NOT met: raw sketches survived (hll %.2fx @ %d, kmv %.2fx @ %d)",
			hllRes.FinalRelError, hllRes.InteractionsToFail, kmvRes.FinalRelError, kmvRes.InteractionsToFail))
	}

	// ---- Part 2: every defense keeps error bounded ----
	const lambda = 24
	defenses := []struct {
		name string
		k    int
		mk   func() robust.Estimator
	}{
		{"switching-hll", hllK, func() robust.Estimator { return robust.NewSwitchingHLL(0.05, lambda, uint8(p), seed) }},
		{"switching-kmv", kmvK, func() robust.Estimator { return robust.NewSwitchingKMV(0.05, lambda, kmvK, seed) }},
		{"noisy-hll", hllK, func() robust.Estimator { return robust.NewNoisy(cardinality.NewHLL(uint8(p), seed), 0.1, seed) }},
		// q=1/8: 7/8 of hunted "masked" candidates were never hashed at
		// all, so the replayed attack set behaves mostly like an honest
		// stream. (Subsampling is a dilution defense — its strength
		// scales with 1/q, so q must shrink as the attack budget grows.)
		{"subsampled-hll", hllK, func() robust.Estimator { return robust.NewSubsampled(cardinality.NewHLL(uint8(p), seed), 0.125, seed) }},
		{"robustdistinct", hllK, func() robust.Estimator { return robust.NewDefendedDistinct(0.05, lambda, uint8(p), seed, 0.1, 0.5) }},
	}
	tbl2 := core.NewTable("defended wrappers under the same attack",
		"defense", "probed", "masked", "interactions", "final_rel_err", "bounded")
	allBounded := true
	for _, d := range defenses {
		cfg.K, cfg.MaskTarget = d.k, 64*d.k
		res, err := attack.Run(attack.NewEstimatorTarget(d.mk()), attack.NewEstimatorTarget(d.mk()), cfg)
		if err != nil {
			return fail("attack vs %s: %v", d.name, err)
		}
		bounded := res.FinalRelError < 2 && !math.IsInf(res.FinalRelError, 1)
		allBounded = allBounded && bounded
		tbl2.AddRow(d.name, res.Probed, res.Masked, res.Interactions, res.FinalRelError, bounded)
	}
	tables = append(tables, tbl2)
	if allBounded {
		notes = append(notes, "acceptance: every defense holds the attack below 2x relative error — met")
	} else {
		notes = append(notes, "acceptance NOT met: a defended wrapper was driven past 2x relative error")
	}

	// ---- Part 3: live sketchd — offline-hunted set transfers; the
	// query budget refuses the online hunt ----
	srv := server.New()
	srv.SetQueryBudget(server.QueryBudget{Queries: 256, Interval: time.Minute})
	base, shutdown, err := serveExisting(srv)
	if err != nil {
		return fail("serve: %v", err)
	}
	defer shutdown()
	cl := client.New(base)

	// 3a: hunt locally against the default seed, replay into a live
	// undefended sketch — ~17 reads, far under budget. The transfer is
	// the threat model: any deployment leaving the default seed shares
	// randomness with the attacker's offline copy.
	const liveP = 8
	if err := cl.Create("raw-victim", server.CreateRequest{Type: "hll", P: liveP}); err != nil {
		return fail("create raw-victim: %v", err)
	}
	transferCfg := attack.Config{K: 1 << liveP, Seed: 11}
	transfer, err := attack.Run(attack.NewHLLTarget(liveP, seed), attack.NewServerTarget(cl, "raw-victim"), transferCfg)
	if err != nil {
		return fail("transfer attack: %v", err)
	}

	// 3b: the same online hunt against budget-guarded sketches is
	// refused long before it assembles an attack set.
	for _, name := range []string{"guard-probe", "guard-victim"} {
		if err := cl.Create(name, server.CreateRequest{Type: "hll", P: liveP}); err != nil {
			return fail("create %s: %v", name, err)
		}
	}
	guarded, err := attack.Run(attack.NewServerTarget(cl, "guard-probe"), attack.NewServerTarget(cl, "guard-victim"), transferCfg)
	if err != nil {
		return fail("guarded attack: %v", err)
	}

	// 3c: the refusal carries Retry-After, and ingest stays ungated.
	_, throttledErr := cl.Estimate("guard-probe", nil)
	var se *client.StatusError
	gotRetryAfter := errors.As(throttledErr, &se) && se.Code == 429 && se.RetryAfter > 0
	ingestErr := cl.Add("guard-probe", []string{"ingest-unthrottled"})
	var throttledGauge uint64
	if st, err := cl.Status(); err == nil {
		for _, t := range st.Tenants {
			throttledGauge += t.Throttled
		}
	}

	tbl3 := core.NewTable("live sketchd: attack-set transfer and the query-budget guard",
		"check", "result")
	tbl3.AddRow("offline-hunted set poisons live default-seed hll",
		fmt.Sprintf("%.1fx rel error after %d masked items", transfer.FinalRelError, transfer.Masked))
	tbl3.AddRow("online hunt vs -query-budget=256",
		fmt.Sprintf("refused=%v after %d interactions (%d masked)", guarded.Refused, guarded.Interactions, guarded.Masked))
	tbl3.AddRow("429 carries Retry-After", fmt.Sprintf("%v (retry after %v)", gotRetryAfter, se.RetryAfter))
	tbl3.AddRow("ingest ungated while throttled", okStr(ingestErr))
	tbl3.AddRow("throttled gauge on /v1/status", fmt.Sprintf("%d", throttledGauge))
	tables = append(tables, tbl3)
	if transfer.FinalRelError >= 2 && guarded.Refused && gotRetryAfter && ingestErr == nil && throttledGauge > 0 {
		notes = append(notes, "acceptance: the query budget refuses the online hunt with 429 + Retry-After while ingest flows, and the offline transfer shows why the guard exists — met")
	} else {
		notes = append(notes, fmt.Sprintf(
			"acceptance NOT met: guard outcome transfer=%.2fx refused=%v retry_after=%v ingest=%v throttled=%d",
			transfer.FinalRelError, guarded.Refused, gotRetryAfter, ingestErr, throttledGauge))
	}

	// ---- Part 4: robustdistinct serves honest traffic accurately ----
	if err := cl.Create("honest", server.CreateRequest{Type: "robustdistinct", P: 12,
		Params: map[string]float64{"lambda": 8, "rho": 0.05}}); err != nil {
		return fail("create robustdistinct: %v", err)
	}
	const honestN = 4096
	items := make([]string, honestN)
	for i := range items {
		items[i] = fmt.Sprintf("honest-user-%d", i)
	}
	if err := cl.Add("honest", items); err != nil {
		return fail("honest ingest: %v", err)
	}
	doc, err := cl.Query("honest", nil)
	if err != nil {
		return fail("honest query: %v", err)
	}
	est, _ := doc["estimate"].(float64)
	copies, _ := doc["copies"].(float64)
	honestErr := math.Abs(est-honestN) / honestN

	tbl4 := core.NewTable("robustdistinct over HTTP: honest-stream utility",
		"truth", "estimate", "rel_err", "copies", "exhausted")
	tbl4.AddRow(honestN, est, honestErr, int(copies), doc["exhausted"])
	tables = append(tables, tbl4)
	if honestErr < 0.15 && int(copies) == 8 {
		notes = append(notes, fmt.Sprintf("acceptance: served robustdistinct answers honest queries within %.1f%% — met", honestErr*100))
	} else {
		notes = append(notes, fmt.Sprintf("acceptance NOT met: served robustdistinct off by %.1f%%", honestErr*100))
	}

	return &Result{
		ID:     "E32",
		Title:  "adversarial robustness: quadratic-query attack vs the defended estimator family and the sketchd query budget",
		Claim:  "a fixed-randomness sketch is breakable in O(k^2) adaptive queries (Cohen–Nelson–Sarlós), and the paper's robustness pathway — switching, noise, subsampling, and query budgeting — holds the line: each defense keeps error bounded or refuses the query stream outright (§5 adversarial robustness)",
		Tables: tables,
		Notes:  notes,
	}
}
