package experiments

import (
	"repro/internal/cardinality"
	"repro/internal/core"
	"repro/internal/randx"
)

func init() {
	register("E23", "Theta sketch set algebra: audience overlap queries", runE23)
}

// runE23 validates the DataSketches-style set algebra on the paper's
// advertising workload: audiences are user-id sets; union, intersection
// and difference of *sketches* answer overlap questions ("users who saw
// campaign A but not B") that plain counters cannot, at k·8 bytes per
// audience.
func runE23() *Result {
	// Three overlapping audiences drawn from a 1M-user population.
	const k = 4096
	rng := randx.New(223)
	mk := func() (*cardinality.Theta, map[uint64]bool) {
		t := cardinality.NewTheta(k, 227)
		exact := map[uint64]bool{}
		base := rng.Uint64() % 500000
		span := 200000 + rng.Intn(200000)
		for i := 0; i < span; i++ {
			u := base + uint64(i)
			t.AddUint64(u)
			exact[u] = true
		}
		return t, exact
	}
	ta, ea := mk()
	tb, eb := mk()
	tc, ec := mk()

	exactCount := func(pred func(u uint64) bool, universe map[uint64]bool) float64 {
		n := 0.0
		for u := range universe {
			if pred(u) {
				n++
			}
		}
		return n
	}
	all := map[uint64]bool{}
	for u := range ea {
		all[u] = true
	}
	for u := range eb {
		all[u] = true
	}
	for u := range ec {
		all[u] = true
	}

	tbl := core.NewTable("E23: theta sketch set expressions, k=4096, three ~300k audiences",
		"expression", "sketch estimate", "exact", "relerr")
	union, err := ta.Union(tb)
	if err != nil {
		panic(err)
	}
	wantU := exactCount(func(u uint64) bool { return ea[u] || eb[u] }, all)
	tbl.AddRow("A ∪ B", union.Estimate(), wantU, core.RelErr(union.Estimate(), wantU))

	inter, err := ta.Intersect(tb)
	if err != nil {
		panic(err)
	}
	wantI := exactCount(func(u uint64) bool { return ea[u] && eb[u] }, all)
	tbl.AddRow("A ∩ B", inter.Estimate(), wantI, core.RelErr(inter.Estimate(), wantI))

	diff, err := ta.AnotB(tb)
	if err != nil {
		panic(err)
	}
	wantD := exactCount(func(u uint64) bool { return ea[u] && !eb[u] }, all)
	tbl.AddRow("A \\ B", diff.Estimate(), wantD, core.RelErr(diff.Estimate(), wantD))

	// Composed expression: (A ∪ B) ∩ C.
	composed, err := union.Intersect(tc)
	if err != nil {
		panic(err)
	}
	wantC := exactCount(func(u uint64) bool { return (ea[u] || eb[u]) && ec[u] }, all)
	tbl.AddRow("(A ∪ B) ∩ C", composed.Estimate(), wantC, core.RelErr(composed.Estimate(), wantC))

	return &Result{
		ID:     "E23",
		Title:  "Theta sketch set algebra",
		Claim:  "§2/§3: the DataSketches project's theta sketches let reach systems answer arbitrary audience set expressions from per-audience sketches, not raw data.",
		Tables: []*core.Table{tbl},
		Notes:  []string{"Each audience costs at most k·8 = 32 KiB regardless of its size."},
	}
}
