package experiments

import (
	"fmt"
	"math"

	"repro/internal/adtech"
	"repro/internal/ams"
	"repro/internal/cardinality"
	"repro/internal/core"
	"repro/internal/fetchsgd"
	"repro/internal/graphsketch"
	"repro/internal/jl"
	"repro/internal/lsh"
	"repro/internal/privacy"
	"repro/internal/randx"
	"repro/internal/robust"
)

func init() {
	register("E10", "JL transforms: distance preservation vs output dimension", runE10)
	register("E11", "LSH: banded MinHash recall S-curve", runE11)
	register("E12", "AGM graph sketch: connectivity on planted components", runE12)
	register("E13", "Adversarially robust streaming vs adaptive attack", runE13)
	register("E14", "Ad reach: slice-and-dice distinct counting", runE14)
	register("E15", "Private collection: RAPPOR and private CMS vs epsilon", runE15)
	register("E16", "FetchSGD: communication vs accuracy", runE16)
}

// runE10 sweeps the JL output dimension and measures the fraction of
// pairwise distances preserved within (1±0.2) for all three transforms.
func runE10() *Result {
	const nPts, d = 40, 1000
	rng := randx.New(73)
	pts := make([][]float64, nPts)
	for i := range pts {
		pts[i] = make([]float64, d)
		for j := range pts[i] {
			pts[i][j] = rng.Normal()
		}
	}
	within := func(tr jl.Transform, eps float64) float64 {
		proj := make([][]float64, nPts)
		for i, p := range pts {
			proj[i] = tr.Apply(p)
		}
		ok, total := 0, 0
		for i := 0; i < nPts; i++ {
			for j := i + 1; j < nPts; j++ {
				total++
				orig := jl.Distance(pts[i], pts[j])
				if math.Abs(jl.Distance(proj[i], proj[j])-orig) <= eps*orig {
					ok++
				}
			}
		}
		return float64(ok) / float64(total)
	}
	tbl := core.NewTable("E10: fraction of pairs within (1±0.2), 40 points in R^1000",
		"k", "gaussian", "rademacher", "sparse(s=8)")
	for _, k := range []int{32, 64, 128, 256, 512} {
		tbl.AddRow(k,
			within(jl.NewGaussian(d, k, 79), 0.2),
			within(jl.NewRademacher(d, k, 83), 0.2),
			within(jl.NewSparse(d, k, 8, 89), 0.2))
	}
	return &Result{
		ID:     "E10",
		Title:  "Johnson–Lindenstrauss distance preservation",
		Claim:  "§2: JL (1984) preserves Euclidean distances under projection; sparse constructions (Kane–Nelson) match with s nonzeros per column.",
		Tables: []*core.Table{tbl},
	}
}

// runE11 builds near-duplicate pairs across a similarity sweep and
// reports banded-index recall against the analytic S-curve.
func runE11() *Result {
	const bands, rows = 32, 4
	tbl := core.NewTable("E11: banded MinHash recall (b=32, r=4), 40 pairs per point",
		"jaccard", "measured recall", "analytic 1-(1-s^r)^b")
	for _, target := range []float64{0.1, 0.3, 0.5, 0.7, 0.8, 0.9} {
		hits, total := 0, 0
		ix := lsh.NewIndex(bands, rows)
		type pair struct {
			id  string
			sig *lsh.MinHash
		}
		var probes []pair
		for rep := 0; rep < 40; rep++ {
			seed := uint64(rep) + uint64(target*1000)
			a, b := similarSets(target, 400, seed)
			ma := lsh.NewMinHash(bands*rows, 97)
			mb := lsh.NewMinHash(bands*rows, 97)
			for _, e := range a {
				ma.AddString(e)
			}
			for _, e := range b {
				mb.AddString(e)
			}
			id := fmt.Sprintf("p%.1f-%d", target, rep)
			must(ix.Add(id, ma))
			probes = append(probes, pair{id, mb})
		}
		for _, p := range probes {
			total++
			for _, c := range ix.Candidates(p.sig) {
				if c == p.id {
					hits++
					break
				}
			}
		}
		analytic := 1 - math.Pow(1-math.Pow(target, rows), bands)
		tbl.AddRow(target, float64(hits)/float64(total), analytic)
	}
	return &Result{
		ID:     "E11",
		Title:  "LSH similarity search recall",
		Claim:  "§2: LSH 'builds a sketch of a large object, such that similar objects are likely to have similar sketches'.",
		Tables: []*core.Table{tbl},
	}
}

func similarSets(jaccard float64, size int, seed uint64) ([]string, []string) {
	shared := int(jaccard * float64(size) * 2 / (1 + jaccard))
	only := size - shared
	var a, b []string
	for i := 0; i < shared; i++ {
		e := fmt.Sprintf("s-%d-%d", seed, i)
		a = append(a, e)
		b = append(b, e)
	}
	for i := 0; i < only; i++ {
		a = append(a, fmt.Sprintf("a-%d-%d", seed, i))
		b = append(b, fmt.Sprintf("b-%d-%d", seed, i))
	}
	return a, b
}

// runE12 plants components of varying sizes and checks the sketch
// recovers the exact component structure, including under deletions.
func runE12() *Result {
	tbl := core.NewTable("E12: AGM connectivity on planted components",
		"vertices", "components planted", "components found", "after 1 bridge deletion")
	for _, n := range []int{64, 128, 256} {
		clusters := 4
		s := graphsketch.New(n, 14, uint64(n))
		per := n / clusters
		rng := randx.New(uint64(n) + 1)
		for c := 0; c < clusters; c++ {
			base := c * per
			for i := 0; i < per-1; i++ {
				s.AddEdge(base+i, base+i+1)
			}
			for k := 0; k < per; k++ {
				u, v := base+rng.Intn(per), base+rng.Intn(per)
				if u != v {
					s.AddEdge(u, v)
				}
			}
		}
		found := s.ComponentCount()
		// Join two components with a bridge, then delete it again.
		s.AddEdge(0, per)
		s.RemoveEdge(0, per)
		after := s.ComponentCount()
		tbl.AddRow(n, clusters, found, after)
	}
	return &Result{
		ID:     "E12",
		Title:  "Graph connectivity via linear sketches",
		Claim:  "§2: AGM sketches 'allowed dynamic connectivity … to be solved in near-linear space' — including edge deletions.",
		Tables: []*core.Table{tbl},
	}
}

// runE13 mounts the adaptive underestimation attack against a naive
// AMS sketch and the sketch-switching wrapper.
func runE13() *Result {
	attack := func(update func(uint64, int64), estimate func() float64, steps int, seed uint64) (float64, float64) {
		rng := randx.New(seed)
		freq := map[uint64]int64{}
		next := uint64(1)
		for step := 0; step < steps; step++ {
			before := estimate()
			probe := next
			next++
			update(probe, 1)
			freq[probe]++
			if estimate() <= before {
				burst := int64(5 + rng.Intn(10))
				update(probe, burst)
				freq[probe] += burst
			}
		}
		var trueF2 float64
		for _, f := range freq {
			trueF2 += float64(f) * float64(f)
		}
		return estimate(), trueF2
	}
	tbl := core.NewTable("E13: adaptive attack on F2 estimation (1500 adaptive steps)",
		"estimator", "reported F2", "true F2", "ratio", "space bytes")
	naive := ams.New(1, 64, 42)
	nRep, nTrue := attack(func(i uint64, w int64) { naive.AddUint64(i, w) }, naive.F2, 1500, 7)
	tbl.AddRow("naive AMS", nRep, nTrue, nRep/nTrue, naive.SizeBytes())
	rob := robust.NewF2(0.5, robust.LambdaFor(0.5, 1e9), 1, 64, 42)
	rRep, rTrue := attack(rob.AddUint64, rob.Estimate, 1500, 7)
	tbl.AddRow("sketch-switching", rRep, rTrue, rRep/rTrue, rob.SizeBytes())
	return &Result{
		ID:     "E13",
		Title:  "Adversarially robust streaming",
		Claim:  "PODS 2020 best paper: randomized sketches can be made 'robust to an adversary trying to break the approximation guarantee'.",
		Tables: []*core.Table{tbl},
		Notes:  []string{"The naive ratio collapses toward 0 under attack; the robust wrapper stays near 1 at a λ-fold space cost."},
	}
}

// runE14 runs the advertising reach pipeline and scores sketch
// estimates against exact set arithmetic, including the memory
// comparison that §3 says eventually favoured exact warehouses.
func runE14() *Result {
	const nImpressions = 500000
	g := adtech.NewGenerator(20, 300000, 101)
	r := adtech.NewReporter(14, 103)
	exactTotal := map[int]map[uint64]bool{}
	allUsers := map[uint64]bool{}
	for i := 0; i < nImpressions; i++ {
		imp := g.Next()
		r.Record(imp)
		if exactTotal[imp.CampaignID] == nil {
			exactTotal[imp.CampaignID] = map[uint64]bool{}
		}
		exactTotal[imp.CampaignID][imp.UserID] = true
		allUsers[imp.UserID] = true
	}
	tbl := core.NewTable("E14: campaign reach, 500k impressions, 20 campaigns",
		"campaign", "true reach", "sketch reach", "relerr", "rollup==total")
	for _, c := range r.Campaigns()[:8] {
		truth := float64(len(exactTotal[c]))
		est := r.Reach(c)
		rollup, err := r.RollupReach(c, "region")
		if err != nil {
			panic(err)
		}
		tbl.AddRow(c, truth, est, core.RelErr(est, truth), fmt.Sprint(rollup == est))
	}
	comb, err := r.CombinedReach(r.Campaigns()...)
	if err != nil {
		panic(err)
	}
	xTbl := core.NewTable("E14b: cross-campaign dedup and memory",
		"metric", "value")
	xTbl.AddRow("true distinct users (all campaigns)", len(allUsers))
	xTbl.AddRow("combined sketch reach", comb)
	xTbl.AddRow("sketch memory bytes", r.SizeBytes())
	xTbl.AddRow("exact sets memory bytes (>=8B/user/campaign)", len(allUsers)*8)
	xTbl.AddRow("sketches maintained", r.SketchCount())
	return &Result{
		ID:     "E14",
		Title:  "Online advertising reach",
		Claim:  "§3: distinct-count sketches 'track how many distinct users … while avoiding double counting' and support 'slice and dice' reporting.",
		Tables: []*core.Table{tbl, xTbl},
	}
}

// runE15 sweeps the privacy budget for both deployed designs the paper
// names (RAPPOR; Apple-style CMS) and shows error shrinking with ε and
// with population size.
func runE15() *Result {
	tbl := core.NewTable("E15: private frequency estimation error vs epsilon (20k clients)",
		"epsilon", "RAPPOR head-item relerr", "private-CMS head-item relerr")
	candidates := []string{"v0", "v1", "v2", "v3", "v4", "v5", "v6", "v7"}
	weights := []float64{0.4, 0.2, 0.12, 0.1, 0.07, 0.05, 0.04, 0.02}
	const nClients = 20000
	for _, eps := range []float64{0.5, 1, 2, 4, 8} {
		rap := privacy.NewRAPPOR(64, 2, eps, 107)
		cms := privacy.NewPrivateCMS(256, 16, eps, 109)
		rng := randx.New(113)
		truth := map[string]float64{}
		var reports [][]bool
		for c := 0; c < nClients; c++ {
			u := rng.Float64()
			var v string
			acc := 0.0
			for i, w := range weights {
				acc += w
				if u < acc || i == len(weights)-1 {
					v = candidates[i]
					break
				}
			}
			truth[v]++
			reports = append(reports, rap.Encode(v, uint64(c)+1))
			cms.Absorb(cms.EncodeClient(v, uint64(c)+500000))
		}
		est := rap.EstimateFrequencies(rap.Aggregate(reports), nClients, candidates)
		rapErr := core.RelErr(est["v0"], truth["v0"])
		cmsErr := core.RelErr(cms.Estimate("v0"), truth["v0"])
		tbl.AddRow(eps, rapErr, cmsErr)
	}

	scale := core.NewTable("E15b: DP Count-Min relative error vs per-item count (eps=1)",
		"count per item", "mean relerr")
	for _, perItem := range []int{20, 200, 2000} {
		d := privacy.NewDPCountMin(1024, 5, 1, 127)
		for i := 0; i < 50; i++ {
			for j := 0; j < perItem; j++ {
				d.AddString(fmt.Sprint(i))
			}
		}
		d.Release(131)
		var rel float64
		for i := 0; i < 50; i++ {
			got, err := d.EstimateString(fmt.Sprint(i))
			if err != nil {
				panic(err)
			}
			rel += core.RelErr(got, float64(perItem))
		}
		scale.AddRow(perItem, rel/50)
	}
	return &Result{
		ID:     "E15",
		Title:  "Privacy-preserving collection",
		Claim:  "§3: sketches 'mix and concentrate the information from many individuals, making the perturbations due to privacy less disruptive'.",
		Tables: []*core.Table{tbl, scale},
	}
}

// runE16 sweeps sketch size in the FetchSGD loop and reports final loss
// against the uncompressed baseline.
func runE16() *Result {
	task := fetchsgd.NewTask(1024, 12, 0.05, 137)
	workers := fetchsgd.NewWorkers(task, 8, 2048, 139)
	base := fetchsgd.TrainUncompressed(task, workers, 300, 0.3)
	tbl := core.NewTable("E16: FetchSGD communication/accuracy (d=1024, 8 workers, 300 rounds)",
		"config", "uplink bytes/round", "compression", "final MSE")
	tbl.AddRow("uncompressed SGD", base.BytesPerRound, 1.0, base.FinalLoss)
	for _, cfg := range []fetchsgd.FetchSGDConfig{
		{Rows: 5, Cols: 160, K: 64, LR: 0.06, Momentum: 0.5, Seed: 149},
		{Rows: 5, Cols: 128, K: 64, LR: 0.05, Momentum: 0.5, Seed: 151},
		{Rows: 5, Cols: 64, K: 64, LR: 0.03, Momentum: 0.5, Seed: 157},
	} {
		res := fetchsgd.TrainFetchSGD(task, workers, 300, cfg)
		tbl.AddRow(fmt.Sprintf("sketch %dx%d", cfg.Rows, cfg.Cols),
			res.BytesPerRound,
			float64(base.BytesPerRound)/float64(res.BytesPerRound),
			res.FinalLoss)
	}
	zero := fetchsgd.Loss(workers, make([]float64, task.Dim))
	return &Result{
		ID:     "E16",
		Title:  "Sketched gradient compression",
		Claim:  "§3: sketches 'reduce the communication cost of distributed machine learning' (FetchSGD).",
		Tables: []*core.Table{tbl},
		Notes: []string{
			fmt.Sprintf("Zero-model MSE (no training): %.2f — all configurations recover most of it.", zero),
			"Substitution: production fleet replaced by simulated workers; server accumulators kept dense (DESIGN.md §3).",
		},
	}
}

// Interface pin: the compile-time check keeps experiment code honest
// about the public query surface it relies on.
var _ distinctCounter = (*cardinality.HLL)(nil)
