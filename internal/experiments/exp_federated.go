package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/federated"
	"repro/internal/randx"
)

func init() {
	register("E24", "Federated analytics: secure aggregation + central DP", runE24)
}

// runE24 runs the cite-[8] pipeline: a cohort's private values are
// tallied through pairwise-masked secure aggregation, optionally with
// central DP noise. The table shows (a) that the server's view of any
// single upload is mask noise, (b) that the aggregate is exact without
// DP, and (c) the accuracy/privacy tradeoff with DP.
func runE24() *Result {
	const cohort = 100
	values := []string{"v0", "v1", "v2", "v3"}
	weights := []float64{0.4, 0.3, 0.2, 0.1}

	round := federated.NewFrequencyRound(cohort, values, 229)
	rng := randx.New(233)
	truth := map[string]float64{}
	uploads := make([][]float64, cohort)
	for id := 0; id < cohort; id++ {
		u := rng.Float64()
		var v string
		acc := 0.0
		for i, w := range weights {
			acc += w
			if u < acc || i == len(values)-1 {
				v = values[i]
				break
			}
		}
		truth[v]++
		uploads[id] = round.ClientUpload(id, v)
	}

	// Upload opacity: fraction of cells in upload 0 smaller than 1000
	// (plaintext scale is 1; masks are ~1e6).
	smallCells := 0
	for _, c := range uploads[0] {
		if math.Abs(c) < 1000 {
			smallCells++
		}
	}

	tbl := core.NewTable("E24: federated frequency round, cohort=100",
		"epsilon", "max |tally − truth|", "note")
	exact, err := round.Tally(uploads, 0, 239)
	if err != nil {
		panic(err)
	}
	maxErr := 0.0
	for _, v := range values {
		if e := math.Abs(exact[v] - truth[v]); e > maxErr {
			maxErr = e
		}
	}
	tbl.AddRow("none", maxErr, "secure aggregation alone: exact sum")
	for _, eps := range []float64{0.5, 1, 4} {
		noisy, err := round.Tally(uploads, eps, 241)
		if err != nil {
			panic(err)
		}
		maxErr = 0
		for _, v := range values {
			if e := math.Abs(noisy[v] - truth[v]); e > maxErr {
				maxErr = e
			}
		}
		tbl.AddRow(eps, maxErr, "central Laplace(1/eps) per cell")
	}
	return &Result{
		ID:     "E24",
		Title:  "Federated analytics",
		Claim:  "§3 via cite [8]: federated analytics 'can be crudely described as being based on sketches with privacy' — servers see only masked sums.",
		Tables: []*core.Table{tbl},
		Notes: []string{
			fmt.Sprintf("Opacity check: %d/%d cells of a single upload are below 1000x the plaintext scale (masks dominate).", smallCells, len(values)),
		},
	}
}
