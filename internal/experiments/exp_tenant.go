package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/server"
	"repro/internal/server/client"
)

func init() {
	register("E31", "multi-tenant sketchd: group-by fan-out, quota isolation, TTL eviction under kill -9", runE31)
}

// runE31 validates the multi-tenant serving layer end to end:
//
//  1. group-by ingest fans one batched POST into >1000 per-group
//     sketches, logged as ONE WAL record;
//  2. a tenant breaching its quota answers 429 while other tenants'
//     traffic is untouched;
//  3. a WAL-logged TTL eviction survives kill -9 — the evicted sketch
//     stays dead and survivors recover byte-identically;
//  4. legacy surfaces keep working: bare /v1 URLs address the default
//     tenant, and pre-tenant version-1 DUR1 logs still replay;
//  5. the single-sketch ingest apply path stays allocation-free.
func runE31() *Result {
	fail := func(format string, args ...any) *Result {
		return &Result{ID: "E31", Title: "multi-tenant sketchd",
			Notes: []string{fmt.Sprintf(format, args...)}}
	}
	var notes []string
	var tables []*core.Table

	// ---- Part 1: group-by fan-out, one call, one WAL record ----
	dir, err := os.MkdirTemp("", "e31-tenant-*")
	if err != nil {
		return fail("tempdir: %v", err)
	}
	defer os.RemoveAll(dir)
	srv := server.New()
	if _, err := srv.EnableDurability(dir, durable.Options{FsyncInterval: 0}); err != nil {
		return fail("durability: %v", err)
	}
	base, shutdown, err := serveExisting(srv)
	if err != nil {
		return fail("serve: %v", err)
	}

	const groups, perGroup = 1200, 4
	var batch bytes.Buffer
	for g := 0; g < groups; g++ {
		for i := 0; i < perGroup; i++ {
			fmt.Fprintf(&batch, "seg%04d\tuser-%d-%d\n", g, g, i)
		}
	}
	cl := client.New(base).Tenant("ads")
	lsn0 := srv.DurabilityStatus().WALLSN
	t0 := time.Now()
	ack, err := cl.GroupBy(url.Values{"type": {"hll"}, "p": {"12"}, "prefix": {"g-"}}, batch.Bytes())
	wall := time.Since(t0)
	if err != nil {
		shutdown()
		return fail("groupby: %v", err)
	}
	walRecords := srv.DurabilityStatus().WALLSN - lsn0

	tbl1 := core.NewTable("group-by ingest: one POST, a sketch per group, one WAL record",
		"groups", "items", "created", "wal_records", "wall_ms")
	tbl1.AddRow(ack.Groups, int(ack.Added), ack.Created, int(walRecords), float64(wall.Milliseconds()))
	tables = append(tables, tbl1)
	if ack.Created >= 1000 && walRecords == 1 {
		notes = append(notes, fmt.Sprintf("acceptance: %d group sketches from one batched call, logged as 1 WAL record — met", ack.Created))
	} else {
		notes = append(notes, fmt.Sprintf("acceptance NOT met: created %d sketches across %d WAL records", ack.Created, walRecords))
	}

	// ---- Part 3 (same durable server): TTL eviction across kill -9 ----
	ttlCl := client.New(base).Tenant("ttl")
	if err := ttlCl.Create("ephemeral", server.CreateRequest{Type: "hll", P: 12, TTLSeconds: 1, CreatedUnix: 1000}); err != nil {
		shutdown()
		return fail("create ephemeral: %v", err)
	}
	ttlCl.Add("ephemeral", []string{"gone-1", "gone-2"})
	if err := ttlCl.Create("keeper", server.CreateRequest{Type: "hll", P: 12}); err != nil {
		shutdown()
		return fail("create keeper: %v", err)
	}
	ttlCl.Add("keeper", []string{"kept-1", "kept-2", "kept-3"})
	evicted := srv.SweepExpired(time.Now())
	wantKeeper, err := ttlCl.Snapshot("keeper")
	if err != nil {
		shutdown()
		return fail("keeper snapshot: %v", err)
	}
	wantGroup, err := cl.Snapshot("g-seg0000")
	if err != nil {
		shutdown()
		return fail("group snapshot: %v", err)
	}

	shutdown()
	if err := srv.KillDurability(); err != nil {
		return fail("kill: %v", err)
	}

	srv2 := server.New()
	if _, err := srv2.EnableDurability(dir, durable.Options{FsyncInterval: 0}); err != nil {
		return fail("recovery: %v", err)
	}
	base2, shutdown2, err := serveExisting(srv2)
	if err != nil {
		return fail("serve recovered: %v", err)
	}
	defer shutdown2()
	defer srv2.CloseDurability()

	_, ephErr := client.New(base2).Tenant("ttl").Snapshot("ephemeral")
	gotKeeper, _ := client.New(base2).Tenant("ttl").Snapshot("keeper")
	gotGroup, _ := client.New(base2).Tenant("ads").Snapshot("g-seg0000")
	var se *client.StatusError
	evictedStaysDead := errors.As(ephErr, &se) && se.Code == 404

	tbl3 := core.NewTable("TTL eviction and group-by state across kill -9",
		"check", "result")
	tbl3.AddRow("sweep evicted expired sketch", fmt.Sprintf("%d evicted", evicted))
	tbl3.AddRow("evicted sketch after recovery", map[bool]string{true: "404 (stays dead)", false: fmt.Sprintf("RESURRECTED: %v", ephErr)}[evictedStaysDead])
	tbl3.AddRow("survivor snapshot byte-identical", fmt.Sprintf("%v", bytes.Equal(wantKeeper, gotKeeper)))
	tbl3.AddRow("group-by sketch byte-identical", fmt.Sprintf("%v", bytes.Equal(wantGroup, gotGroup)))
	tables = append(tables, tbl3)
	if evicted == 1 && evictedStaysDead && bytes.Equal(wantKeeper, gotKeeper) && bytes.Equal(wantGroup, gotGroup) {
		notes = append(notes, "acceptance: TTL eviction is WAL-logged — kill -9 recovery keeps the eviction and restores survivors byte-identically — met")
	} else {
		notes = append(notes, "acceptance NOT met: TTL eviction did not survive recovery intact")
	}

	// Legacy URL on the recovered server: bare /v1 is the default
	// tenant, disjoint from the tenanted namespaces above.
	legacyCl := client.New(base2)
	if err := legacyCl.Create("legacy-url", server.CreateRequest{Type: "hll", P: 12}); err != nil {
		return fail("legacy create: %v", err)
	}
	legacyCl.Add("legacy-url", []string{"a", "b"})
	legacyEst, legacyErr := legacyCl.Estimate("legacy-url", nil)
	_, crossErr := client.New(base2).Tenant("ads").Snapshot("legacy-url")
	crossIs404 := errors.As(crossErr, &se) && se.Code == 404

	// ---- Part 2: quota isolation on a fresh in-memory server ----
	qsrv := server.New()
	qsrv.SetTenantQuota(server.TenantQuota{MaxSketches: 5})
	qbase, qshutdown, err := serveExisting(qsrv)
	if err != nil {
		return fail("quota server: %v", err)
	}
	defer qshutdown()
	noisy := client.New(qbase).Tenant("noisy")
	quiet := client.New(qbase).Tenant("quiet")
	for i := 0; i < 5; i++ {
		if err := noisy.Create(fmt.Sprintf("n-%d", i), server.CreateRequest{Type: "hll", P: 12}); err != nil {
			return fail("noisy create %d: %v", i, err)
		}
	}
	breachErr := noisy.Create("n-over", server.CreateRequest{Type: "hll", P: 12})
	breachIs429 := errors.As(breachErr, &se) && se.Code == 429
	quietCreateErr := quiet.Create("q-0", server.CreateRequest{Type: "hll", P: 12})
	quietAddErr := quiet.Add("q-0", []string{"x", "y", "z"})
	noisyAddErr := noisy.Add("n-0", []string{"still-ingesting"})

	tbl2 := core.NewTable("per-tenant quota (max 5 sketches): breach answers 429, other tenants untouched",
		"tenant", "op", "result")
	tbl2.AddRow("noisy", "create #6", map[bool]string{true: "429 too many requests", false: fmt.Sprintf("%v", breachErr)}[breachIs429])
	tbl2.AddRow("noisy", "ingest into existing", okStr(noisyAddErr))
	tbl2.AddRow("quiet", "create", okStr(quietCreateErr))
	tbl2.AddRow("quiet", "ingest", okStr(quietAddErr))
	tables = append(tables, tbl2)
	if breachIs429 && quietCreateErr == nil && quietAddErr == nil && noisyAddErr == nil {
		notes = append(notes, "acceptance: quota breach answers 429 without disturbing other tenants (or the tenant's own existing sketches) — met")
	} else {
		notes = append(notes, "acceptance NOT met: quota breach leaked across tenants")
	}

	// ---- Part 4: pre-tenant version-1 DUR1 log replay ----
	v1dir, err := os.MkdirTemp("", "e31-v1log-*")
	if err != nil {
		return fail("tempdir: %v", err)
	}
	defer os.RemoveAll(v1dir)
	v1log := durable.WALHeaderV1()
	v1log = durable.AppendRecordV1(v1log, durable.Record{LSN: 1, Op: durable.OpCreate, Name: "legacy", Body: []byte(`{"type":"hll","p":12}`)})
	v1log = durable.AppendRecordV1(v1log, durable.Record{LSN: 2, Op: durable.OpIngest, Name: "legacy", Body: []byte("old-1\nold-2\nold-3")})
	if err := os.WriteFile(v1dir+"/wal-00000000000000000001.log", v1log, 0o644); err != nil {
		return fail("write v1 log: %v", err)
	}
	v1srv := server.New()
	v1stats, err := v1srv.EnableDurability(v1dir, durable.Options{FsyncInterval: 0})
	if err != nil {
		return fail("v1 recovery: %v", err)
	}
	v1base, v1shutdown, err := serveExisting(v1srv)
	if err != nil {
		return fail("serve v1: %v", err)
	}
	v1est, v1err := client.New(v1base).Estimate("legacy", nil)
	v1shutdown()
	v1srv.CloseDurability()

	tbl4 := core.NewTable("legacy compatibility", "surface", "result")
	tbl4.AddRow("bare /v1 URLs (default tenant)", fmt.Sprintf("estimate %.0f, err=%v", legacyEst, legacyErr))
	tbl4.AddRow("default-tenant sketch from other tenant", map[bool]string{true: "404 (isolated)", false: fmt.Sprintf("%v", crossErr)}[crossIs404])
	tbl4.AddRow("version-1 DUR1 log replay", fmt.Sprintf("%d records, estimate %.0f, err=%v", v1stats.RecordsReplayed, v1est, v1err))
	tables = append(tables, tbl4)
	if legacyErr == nil && crossIs404 && v1err == nil && v1stats.RecordsReplayed == 2 {
		notes = append(notes, "acceptance: legacy paths keep working — bare /v1 URLs and version-1 DUR1 logs replay into the default tenant — met")
	} else {
		notes = append(notes, "acceptance NOT met: a legacy surface regressed")
	}

	// ---- Part 5: the ingest apply path stays allocation-free ----
	entry, err := server.NewEntry(server.CreateRequest{Type: "hll", P: 14})
	if err != nil {
		return fail("entry: %v", err)
	}
	defer entry.Close()
	lines := make([][]byte, 256)
	for i := range lines {
		lines[i] = []byte(fmt.Sprintf("alloc-probe-%d", i))
	}
	entry.Add(lines) // warm up
	allocs := testing.AllocsPerRun(50, func() { entry.Add(lines) })
	if allocs == 0 {
		notes = append(notes, "acceptance: batched ingest apply path runs at 0 allocs/op — met")
	} else {
		notes = append(notes, fmt.Sprintf("acceptance NOT met: ingest apply path allocates %.1f allocs/op", allocs))
	}

	return &Result{
		ID:     "E31",
		Title:  "multi-tenant sketchd: group-by fan-out, quota isolation, TTL eviction under kill -9",
		Claim:  "a sketch service is multi-tenant by construction: namespaces are cheap (two map hops), per-group sketches are created by the stream itself (Gigascope-style GROUP BY), and quota/TTL policy rides the same WAL as the data (§4 pathways to impact)",
		Tables: tables,
		Notes:  notes,
	}
}

func okStr(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}

// serveExisting serves an already-constructed server on an ephemeral
// loopback port (startLocalSketchd builds its own Server; E31 needs
// the handle for SweepExpired and KillDurability).
func serveExisting(srv *server.Server) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() { hs.Close() }, nil
}
