package experiments

import (
	"math"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/quantile"
	"repro/internal/randx"
)

func init() {
	register("E6", "Quantile summaries: accuracy vs space across the lineage", runE6)
	register("E6a", "Ablation: t-digest vs KLL tail accuracy", runE6a)
}

// quantileSketch is the common surface of the float-valued summaries.
type quantileSketch interface {
	Add(float64)
	Quantile(float64) float64
	SizeBytes() int
}

// rankErrOf computes rank error with tie-interval semantics.
func rankErrOf(sorted []float64, est float64, q float64) float64 {
	n := float64(len(sorted))
	lo := sort.SearchFloat64s(sorted, est)
	hi := lo
	for hi < len(sorted) && sorted[hi] == est {
		hi++
	}
	target := q * n
	switch {
	case target < float64(lo):
		return (float64(lo) - target) / n
	case target > float64(hi):
		return (target - float64(hi)) / n
	}
	return 0
}

// runE6 scores the whole quantile lineage on mixed workloads at
// comparable configurations, reporting max rank error and space.
func runE6() *Result {
	const n = 200000
	rng := randx.New(43)
	workloads := map[string][]float64{}
	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = rng.Float64() * 1e6
	}
	workloads["uniform"] = uniform
	lognormal := make([]float64, n)
	for i := range lognormal {
		lognormal[i] = math.Exp(rng.Normal() * 2)
	}
	workloads["lognormal"] = lognormal
	sorted := make([]float64, n)
	for i := range sorted {
		sorted[i] = float64(i)
	}
	workloads["sorted"] = sorted

	probeQs := []float64{0.01, 0.25, 0.5, 0.75, 0.99}
	var tables []*core.Table
	for _, wname := range []string{"uniform", "lognormal", "sorted"} {
		data := workloads[wname]
		ref := append([]float64(nil), data...)
		sort.Float64s(ref)
		tbl := core.NewTable("E6 ("+wname+"): max rank error over q in {.01,.25,.5,.75,.99}, n=200k",
			"summary", "max rank err", "bytes", "vs exact bytes")
		exactBytes := n * 8
		sketches := map[string]quantileSketch{
			"MRL(8x512)":    quantile.NewMRL(8, 512, 47),
			"GK(eps=.005)":  quantile.NewGK(0.005),
			"KLL(k=200)":    quantile.NewKLL(200, 47),
			"t-digest(100)": quantile.NewTDigest(100),
		}
		for _, sname := range []string{"MRL(8x512)", "GK(eps=.005)", "KLL(k=200)", "t-digest(100)"} {
			s := sketches[sname]
			for _, v := range data {
				s.Add(v)
			}
			var maxErr float64
			for _, q := range probeQs {
				if e := rankErrOf(ref, s.Quantile(q), q); e > maxErr {
					maxErr = e
				}
			}
			tbl.AddRow(sname, maxErr, s.SizeBytes(),
				float64(s.SizeBytes())/float64(exactBytes))
		}
		tables = append(tables, tbl)
	}

	// Q-digest on an integer workload (its native domain).
	qd := quantile.NewQDigest(20, 2048)
	rng2 := randx.New(53)
	ints := make([]float64, n)
	for i := range ints {
		v := uint64(rng2.Intn(1 << 20))
		qd.Add(v, 1)
		ints[i] = float64(v)
	}
	sort.Float64s(ints)
	qdt := core.NewTable("E6 (q-digest, integer domain 2^20, k=2048)",
		"q", "rank err", "nodes", "bytes")
	for _, q := range probeQs {
		qdt.AddRow(q, rankErrOf(ints, float64(qd.Quantile(q)), q), qd.NodeCount(), qd.SizeBytes())
	}
	tables = append(tables, qdt)

	return &Result{
		ID:     "E6",
		Title:  "Quantile lineage accuracy/space",
		Claim:  "§2: the quantile 'keystone problem' progressed MRL → GK → q-digest → KLL, with KLL optimal.",
		Tables: tables,
		Notes: []string{
			"All summaries hold far below 5% of the exact baseline's memory at n=200k.",
			"GK is deterministic; KLL and MRL are randomized; q-digest requires a bounded integer domain.",
		},
	}
}

// runE6a compares tail accuracy: the t-digest's k1 scale function keeps
// extreme percentiles tighter than uniform-guarantee sketches at
// similar space.
func runE6a() *Result {
	const n = 500000
	rng := randx.New(59)
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Exp(rng.Normal() * 2)
	}
	ref := append([]float64(nil), data...)
	sort.Float64s(ref)

	td := quantile.NewTDigest(100)
	kll := quantile.NewKLL(200, 61)
	for _, v := range data {
		td.Add(v)
		kll.Add(v)
	}
	tbl := core.NewTable("E6a: tail rank error, lognormal n=500k",
		"q", "t-digest rank err", "KLL rank err")
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 0.9999} {
		tbl.AddRow(q,
			rankErrOf(ref, td.Quantile(q), q),
			rankErrOf(ref, kll.Quantile(q), q))
	}
	return &Result{
		ID:     "E6a",
		Title:  "t-digest tail accuracy ablation",
		Claim:  "§3: t-digest is among the 'new algorithms for the core problems' adopted by libraries — its niche is tail quantiles.",
		Tables: []*core.Table{tbl},
		Notes: []string{
			"t-digest bytes: " + strconv.Itoa(td.SizeBytes()) + ", KLL bytes: " + strconv.Itoa(kll.SizeBytes()),
		},
	}
}
