package experiments

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"

	"repro/internal/core"
	"repro/internal/frequency"
	"repro/internal/randx"
	"repro/internal/server"
	"repro/internal/server/client"
)

func init() {
	register("E33", "SF-sketch accuracy per transmitted byte; slim-wire scatter-gather", runE33)
}

// runE33 validates the two-stage wire-efficiency claim on both layers:
//
//  1. accuracy per transmitted byte — one Zipf stream into an
//     SF-sketch, a plain Count-Min, and a fused Count-Min at a range of
//     slim widths. The plain and fused grids ARE the wire payload; the
//     SF fat stage stays home and only the slim grid ships, so at equal
//     transmitted bytes the SF estimates ride the fat stage's error
//     regime. Acceptance: SF average relative error ≤ 1/2 the plain
//     Count-Min's at every equal-wire-size point (target from the SF
//     paper's regime is far larger; 2x is the floor);
//  2. cluster slim shipping — the same sfsketch sharded 4 ways behind
//     a coordinator, scatter-gathered with full and then slim
//     envelopes, reading gather_bytes off the coordinator's /v1/status.
//     Acceptance: the slim gather moves ≤ 1/4 the bytes and the merged
//     slim estimates never undercount the stream.
//
// E33_ITEMS overrides the stream length (CI smoke runs small).
func runE33() *Result {
	items := 1 << 18
	if s := os.Getenv("E33_ITEMS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			items = v
		}
	}
	const depth = 4
	const ratio = 8
	const domain = 1 << 16

	accTbl := core.NewTable(
		fmt.Sprintf("accuracy per transmitted byte, zipf(1.1) n=%d domain=%d depth=%d fat=%dx slim width", items, domain, depth, ratio),
		"wire_bytes", "slim_width", "cm_avg_rel_err", "fused_avg_rel_err", "sf_avg_rel_err", "cm_over_sf")

	rng := randx.New(33)
	z := randx.NewZipf(rng, 1.1, domain)
	stream := make([]uint64, items)
	truth := map[uint64]uint64{}
	for i := range stream {
		v := z.Next()
		stream[i] = v
		truth[v]++
	}

	var notes []string
	accMet := true
	minGain := 0.0
	for _, width := range []int{64, 128, 256, 512} {
		sf := frequency.NewSFSketch(width, depth, ratio*width, depth, 33)
		cm := frequency.NewCountMin(width, depth, 33)
		fu := frequency.NewCountMinFused(width, depth, 33)
		for _, v := range stream {
			sf.AddUint64(v, 1)
			cm.AddUint64(v, 1)
			fu.AddUint64(v, 1)
		}
		var sfErr, cmErr, fuErr float64
		for item, want := range truth {
			w := float64(want)
			sfErr += float64(sf.EstimateUint64(item)-want) / w
			cmErr += float64(cm.EstimateUint64(item)-want) / w
			fuErr += float64(fu.EstimateUint64(item)-want) / w
		}
		n := float64(len(truth))
		sfErr, cmErr, fuErr = sfErr/n, cmErr/n, fuErr/n
		slimEnv, err := sf.MarshalSlim()
		if err != nil {
			return &Result{ID: "E33", Notes: []string{fmt.Sprintf("marshal slim: %v", err)}}
		}
		gain := cmErr / sfErr
		if minGain == 0 || gain < minGain {
			minGain = gain
		}
		if sfErr*2 > cmErr {
			accMet = false
		}
		accTbl.AddRow(len(slimEnv), width, cmErr, fuErr, sfErr, gain)
	}
	if accMet {
		notes = append(notes, fmt.Sprintf(
			"acceptance: SF ≥2x lower avg relative error than plain Count-Min at every equal wire size — met (worst case %.1fx)", minGain))
	} else {
		notes = append(notes, fmt.Sprintf(
			"acceptance: SF ≥2x lower avg relative error than plain Count-Min NOT met (worst case %.1fx)", minGain))
	}

	gatherTbl, gatherNotes := runSlimGatherBytes(items)
	notes = append(notes, gatherNotes...)

	return &Result{
		ID:     "E33",
		Title:  "SF-sketch two-stage accuracy per transmitted byte; slim-wire scatter-gather",
		Claim:  "communication, not memory, prices distributed sketching: a two-stage sketch keeps a fat update stage at each site and ships a slim near-fat-accuracy stage, so coordinator reads cost a fraction of the bytes at almost no accuracy loss (§3 applications / §4 pathways to impact)",
		Tables: []*core.Table{accTbl, gatherTbl},
		Notes:  notes,
	}
}

// runSlimGatherBytes drives a 4-shard coordinator fleet and reads the
// gather byte counters off the coordinator's own status endpoint, full
// gather vs slim gather over the same merged read.
func runSlimGatherBytes(items int) (*core.Table, []string) {
	tbl := core.NewTable("coordinator scatter-gather bytes, sfsketch width 256 depth 4 over 4 shards",
		"wire", "gather_bytes", "estimate(probe)", "true(probe)", "overestimates_stream")
	fail := func(err error) (*core.Table, []string) {
		return tbl, []string{fmt.Sprintf("slim gather run failed: %v", err)}
	}

	var stops []func()
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	urls := make([]string, 4)
	for i := range urls {
		base, stop, err := startLocalSketchd()
		if err != nil {
			return fail(err)
		}
		urls[i] = base
		stops = append(stops, stop)
	}
	coordBase, stopCoord, err := startCoordinator(urls)
	if err != nil {
		return fail(err)
	}
	stops = append(stops, stopCoord)

	cl := client.New(coordBase)
	if err := cl.Create("e33", server.CreateRequest{Type: "sfsketch", Width: 256, Depth: 4, Seed: 33}); err != nil {
		return fail(err)
	}
	// Weighted Zipf batch through the coordinator's per-item routing.
	rng := randx.New(133)
	z := randx.NewZipf(rng, 1.1, 1<<12)
	truth := map[uint64]uint64{}
	buf := make([]byte, 0, 1<<16)
	for i := 0; i < items; i++ {
		v := z.Next()
		truth[v]++
		buf = strconv.AppendUint(buf, v, 10)
		buf = append(buf, '\n')
		if len(buf) > 1<<16-32 {
			if err := cl.AddBatch("e33", buf); err != nil {
				return fail(err)
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if err := cl.AddBatch("e33", buf); err != nil {
			return fail(err)
		}
	}

	gatherBytes := func() (uint64, error) {
		resp, err := http.Get(coordBase + "/v1/status")
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var doc struct {
			Ops struct {
				GatherBytes uint64 `json:"gather_bytes"`
			} `json:"ops"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			return 0, err
		}
		return doc.Ops.GatherBytes, nil
	}

	var probe uint64
	var probeTrue uint64
	for v, c := range truth {
		if c > probeTrue {
			probe, probeTrue = v, c
		}
	}
	probeItem := strconv.FormatUint(probe, 10)

	var fullBytes, slimBytes uint64
	var slimEst float64
	for _, wire := range []string{"full", "slim"} {
		before, err := gatherBytes()
		if err != nil {
			return fail(err)
		}
		// One merged read per wire mode; overestimate check runs over
		// every item below via the same gather mode.
		est, err := cl.Estimate("e33", map[string][]string{"item": {probeItem}, "wire": {wire}})
		if err != nil {
			return fail(err)
		}
		after, err := gatherBytes()
		if err != nil {
			return fail(err)
		}
		over := true
		if uint64(est) < probeTrue {
			over = false
		}
		tbl.AddRow(wire, after-before, est, probeTrue, over)
		if wire == "full" {
			fullBytes = after - before
		} else {
			slimBytes, slimEst = after-before, est
		}
	}

	notes := []string{fmt.Sprintf(
		"slim gather moves %d bytes vs %d full (%.1fx less) for the same merged read; the slim estimate stays an overestimate of the true stream",
		slimBytes, fullBytes, float64(fullBytes)/float64(slimBytes))}
	if slimBytes*4 <= fullBytes && uint64(slimEst) >= probeTrue {
		notes = append(notes, "acceptance: slim gather ≤1/4 the bytes with no undercount — met")
	} else {
		notes = append(notes, "acceptance: slim gather ≤1/4 the bytes with no undercount NOT met")
	}
	return tbl, notes
}
