package experiments

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/server"
	"repro/internal/server/client"
)

func init() {
	register("E27", "durable sketchd ingest throughput vs fsync policy", runE27)
}

// runE27 measures what durability costs the serving layer: the same
// batched HTTP ingest as E25, against an in-memory sketchd and against
// durable sketchds at the three fsync policies (never, 100ms group
// commit, per-batch). The WAL append is off the hot path — handlers
// hand records to a background syncer over a bounded channel — so the
// group-commit configurations should retain most of the in-memory
// throughput; per-batch fsync pays a disk flush per drained batch and
// shows the floor.
func runE27() *Result {
	const (
		clients        = 4
		batch          = 1000
		itemsPerClient = 1 << 16 // 65536 adds per client per config
	)

	configs := []struct {
		label string
		fsync time.Duration // group-commit policy; meaningful when durable
		dur   bool
	}{
		{"in-memory", 0, false},
		{"fsync=never", -1, true},
		{"fsync=100ms", 100 * time.Millisecond, true},
		{"fsync=per-batch", 0, true},
	}

	tbl := core.NewTable("durable sketchd batched ingest, sharded HLL (loopback HTTP, 4 clients × 1000-line batches)",
		"config", "adds", "wall_ms", "adds_per_sec", "pct_of_baseline", "wal_lsn")

	var baseline float64
	var pctAt100ms float64
	notes := []string{}
	for _, cfg := range configs {
		base, shutdown, err := startDurableSketchd(cfg.dur, cfg.fsync)
		if err != nil {
			return &Result{ID: "E27", Title: "durable sketchd ingest throughput vs fsync policy",
				Notes: []string{fmt.Sprintf("%s: failed to start sketchd: %v", cfg.label, err)}}
		}
		cl := client.New(base)
		if err := cl.Create("e27", server.CreateRequest{Type: "hll", P: 14, Seed: 1}); err != nil {
			shutdown()
			return &Result{ID: "E27", Title: "durable sketchd ingest throughput vs fsync policy",
				Notes: []string{fmt.Sprintf("%s: create: %v", cfg.label, err)}}
		}
		adds, _, elapsed := driveIngest(base, "e27", clients, batch, itemsPerClient)
		rate := float64(adds) / elapsed.Seconds()
		var lsn uint64
		if status, err := cl.Status(); err == nil {
			lsn = status.Durability.WALLSN
		}
		shutdown()

		pct := 100.0
		if cfg.dur {
			pct = 100 * rate / baseline
		} else {
			baseline = rate
		}
		if cfg.label == "fsync=100ms" {
			pctAt100ms = pct
		}
		tbl.AddRow(cfg.label, adds, float64(elapsed.Milliseconds()), rate, pct, lsn)
	}

	notes = append(notes,
		"durable configs append every batch to a CRC32C-checksummed WAL; the syncer group-commits per the fsync policy, so handlers block only on the bounded queue, not on the disk",
		fmt.Sprintf("100ms group commit retains %.1f%% of in-memory ingest throughput", pctAt100ms))
	if pctAt100ms >= 50 {
		notes = append(notes, "acceptance: ≥50% of in-memory throughput at 100ms group commit — met")
	} else {
		notes = append(notes, "acceptance: ≥50% of in-memory throughput at 100ms group commit NOT met on this host")
	}
	return &Result{
		ID:     "E27",
		Title:  "durable sketchd ingest throughput vs fsync policy",
		Claim:  "durability is a policy knob, not a redesign: WAL + snapshots give crash recovery for every registry family while group commit keeps ingest within a constant factor of in-memory serving (§4 pathways to impact)",
		Tables: []*core.Table{tbl},
		Notes:  notes,
	}
}

// startDurableSketchd serves internal/server on an ephemeral loopback
// port, optionally durable in a throwaway data dir that is removed on
// shutdown.
func startDurableSketchd(dur bool, fsync time.Duration) (base string, shutdown func(), err error) {
	srv := server.New()
	cleanupDir := func() {}
	if dur {
		dir, err := os.MkdirTemp("", "e27-sketchd-*")
		if err != nil {
			return "", nil, err
		}
		cleanupDir = func() { os.RemoveAll(dir) }
		if _, err := srv.EnableDurability(dir, durable.Options{FsyncInterval: fsync}); err != nil {
			cleanupDir()
			return "", nil, err
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cleanupDir()
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() {
		hs.Close()
		srv.CloseDurability()
		cleanupDir()
	}, nil
}
