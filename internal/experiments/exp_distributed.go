package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/cardinality"
	"repro/internal/concurrent"
	"repro/internal/core"
	"repro/internal/frequency"
	"repro/internal/quantile"
	"repro/internal/randx"
)

func init() {
	register("E7", "Mergeable summaries: sharded vs single-stream accuracy", runE7)
	register("E7a", "Ablation: concurrent sketch update throughput", runE7a)
}

// runE7 shards one stream 64 ways, merges per-shard sketches, and
// compares against single-stream sketches — the Mergeable Summaries
// (PODS 2012) contract.
func runE7() *Result {
	const shards = 64
	const perShard = 10000
	const domain = 50000
	rng := randx.New(67)
	z := randx.NewZipf(rng, 1.2, domain)

	shardHLL := make([]*cardinality.HLL, shards)
	shardCM := make([]*frequency.CountMin, shards)
	shardKLL := make([]*quantile.KLL, shards)
	shardSS := make([]*frequency.SpaceSaving, shards)
	for i := 0; i < shards; i++ {
		shardHLL[i] = cardinality.NewHLL(12, 71)
		shardCM[i] = frequency.NewCountMin(1024, 5, 71)
		shardKLL[i] = quantile.NewKLL(200, uint64(i))
		shardSS[i] = frequency.NewSpaceSaving(256)
	}
	wholeHLL := cardinality.NewHLL(12, 71)
	wholeCM := frequency.NewCountMin(1024, 5, 71)
	wholeKLL := quantile.NewKLL(200, 999)
	wholeSS := frequency.NewSpaceSaving(256)

	truth := map[uint64]uint64{}
	var vals []float64
	for s := 0; s < shards; s++ {
		for i := 0; i < perShard; i++ {
			v := z.Next()
			truth[v]++
			vals = append(vals, float64(v))
			shardHLL[s].AddUint64(v)
			shardCM[s].AddUint64(v, 1)
			shardKLL[s].Add(float64(v))
			shardSS[s].Add(fmt.Sprint(v), 1)
			wholeHLL.AddUint64(v)
			wholeCM.AddUint64(v, 1)
			wholeKLL.Add(float64(v))
			wholeSS.Add(fmt.Sprint(v), 1)
		}
	}
	mergedHLL := shardHLL[0]
	mergedCM := shardCM[0]
	mergedKLL := shardKLL[0]
	mergedSS := shardSS[0]
	for s := 1; s < shards; s++ {
		must(mergedHLL.Merge(shardHLL[s]))
		must(mergedCM.Merge(shardCM[s]))
		must(mergedKLL.Merge(shardKLL[s]))
		must(mergedSS.Merge(shardSS[s]))
	}

	sort.Float64s(vals)
	distinct := float64(len(truth))
	var topItem uint64
	var topCount uint64
	for item, c := range truth {
		if c > topCount {
			topItem, topCount = item, c
		}
	}
	tbl := core.NewTable("E7: 64-way sharded merge vs single stream (n=640k, zipf 1.2)",
		"sketch", "single-stream answer", "merged answer", "truth", "lossless?")
	tbl.AddRow("HLL distinct", wholeHLL.Estimate(), mergedHLL.Estimate(), distinct,
		fmt.Sprint(wholeHLL.Estimate() == mergedHLL.Estimate()))
	tbl.AddRow("CM top-item count", wholeCM.EstimateUint64(topItem), mergedCM.EstimateUint64(topItem),
		topCount, fmt.Sprint(wholeCM.EstimateUint64(topItem) == mergedCM.EstimateUint64(topItem)))
	trueMedian := vals[len(vals)/2]
	tbl.AddRow("KLL median", wholeKLL.Quantile(0.5), mergedKLL.Quantile(0.5), trueMedian, "randomized")
	tbl.AddRow("SS top-item count", wholeSS.Estimate(fmt.Sprint(topItem)),
		mergedSS.Estimate(fmt.Sprint(topItem)), topCount, "bounded")
	return &Result{
		ID:     "E7",
		Title:  "Mergeable summaries",
		Claim:  "§2/PODS 2012: sketches of shards merge into exactly (HLL, CM) or boundedly (KLL, SS) the sketch of the whole stream.",
		Tables: []*core.Table{tbl},
	}
}

// runE7a measures update throughput of the concurrent wrappers across
// goroutine counts against the single-mutex baseline.
func runE7a() *Result {
	const opsPerWorker = 200000
	tbl := core.NewTable("E7a: concurrent Count-Min updates (ops/ms, higher is better)",
		"goroutines", "mutex", "atomic", "speedup")
	// Sweep past GOMAXPROCS so single-core machines still exercise the
	// contention behaviour (speedups only appear with real cores).
	maxWorkers := runtime.GOMAXPROCS(0) * 4
	if maxWorkers > 8 {
		maxWorkers = 8
	}
	for workers := 1; workers <= maxWorkers; workers *= 2 {
		mutexRate := benchWorkers(workers, opsPerWorker, func() func(uint64) {
			c := concurrent.NewMutexCountMin(4096, 4, 1)
			return func(v uint64) { c.AddUint64(v, 1) }
		})
		atomicRate := benchWorkers(workers, opsPerWorker, func() func(uint64) {
			c := concurrent.NewAtomicCountMin(4096, 4, 1)
			return func(v uint64) { c.AddUint64(v, 1) }
		})
		tbl.AddRow(workers, mutexRate, atomicRate, atomicRate/mutexRate)
	}
	hllTbl := core.NewTable("E7a-hll: sharded HLL updates (ops/ms)",
		"goroutines", "sharded HLL rate")
	for workers := 1; workers <= maxWorkers; workers *= 2 {
		s := concurrent.NewShardedHLL(workers, 14, 1)
		rate := benchWorkersHandles(workers, opsPerWorker, s)
		hllTbl.AddRow(workers, rate)
	}
	return &Result{
		ID:     "E7a",
		Title:  "Concurrent sketch throughput",
		Claim:  "§2: the DataSketches project 'emphasised the need for concurrency and mergability of sketches'.",
		Tables: []*core.Table{tbl, hllTbl},
		Notes: []string{
			"Rates vary with hardware; the shape (atomic >= mutex under contention, scaling with real cores) is the claim.",
			fmt.Sprintf("This run used GOMAXPROCS=%d.", runtime.GOMAXPROCS(0)),
		},
	}
}

// benchWorkers runs the shared update function from `workers`
// goroutines and returns aggregate ops per millisecond.
func benchWorkers(workers, ops int, build func() func(uint64)) float64 {
	update := build()
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 32
			for i := 0; i < ops; i++ {
				update(base | uint64(i))
			}
		}(w)
	}
	wg.Wait()
	ms := float64(time.Since(start).Microseconds()) / 1000
	return float64(workers*ops) / ms
}

func benchWorkersHandles(workers, ops int, s *concurrent.ShardedHLL) float64 {
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Handle()
			base := uint64(w) << 32
			for i := 0; i < ops; i++ {
				h.AddUint64(base | uint64(i))
			}
		}(w)
	}
	wg.Wait()
	ms := float64(time.Since(start).Microseconds()) / 1000
	return float64(workers*ops) / ms
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
