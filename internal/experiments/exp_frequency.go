package experiments

import (
	"fmt"
	"math"

	"repro/internal/ams"
	"repro/internal/core"
	"repro/internal/frequency"
	"repro/internal/randx"
	"repro/internal/sample"
)

// newWeightedTrial runs one weighted-reservoir draw over 100 items
// where item 0 has the given weight and the rest weight 1; it reports
// whether the heavy item was selected.
func newWeightedTrial(seed uint64, heavyWeight float64) bool {
	wr := sample.NewWeightedReservoir(1, seed+7777)
	for i := 0; i < 100; i++ {
		w := 1.0
		if i == 0 {
			w = heavyWeight
		}
		wr.Add([]byte{byte(i)}, w)
	}
	s := wr.Sample()
	return len(s) == 1 && s[0][0] == 0
}

// amsPair bundles two compatible AMS sketches.
type amsPair struct{ a, b *ams.Sketch }

func newAMSPair(groups, perGroup int, seed uint64) amsPair {
	return amsPair{a: ams.New(groups, perGroup, seed), b: ams.New(groups, perGroup, seed)}
}

func init() {
	register("E4", "Count-Min (L1) vs Count Sketch (L2) across skew", runE4)
	register("E4a", "Ablation: conservative update vs plain Count-Min", runE4a)
	register("E4b", "Ablation: dyadic Count-Min range queries", runE4b)
	register("E5", "Heavy hitters: SpaceSaving vs Misra-Gries", runE5)
	register("E5a", "Ablation: weighted vs uniform reservoir on skewed data", runE5a)
	register("E9", "AMS tug-of-war: F2 and inner products", runE9)
}

// zipfCounts draws a Zipf stream and returns exact counts.
func zipfCounts(n, domain int, alpha float64, seed uint64) ([]uint64, map[uint64]uint64) {
	rng := randx.New(seed)
	z := randx.NewZipf(rng, alpha, domain)
	stream := make([]uint64, n)
	truth := make(map[uint64]uint64)
	for i := range stream {
		v := z.Next()
		stream[i] = v
		truth[v]++
	}
	return stream, truth
}

// runE4 reproduces the L1-vs-L2 crossover: at equal space, Count
// Sketch wins at light skew (‖f‖₂ ≪ ‖f‖₁) and Count-Min wins at heavy
// skew (‖f‖₂ ≈ ‖f‖₁, and CM's error decays as 1/w vs CS's 1/√w).
func runE4() *Result {
	tbl := core.NewTable("E4: mean |err| per item, n=200k, domain=100k, width=512, depth=5",
		"zipf alpha", "count-min", "count sketch", "winner")
	const n = 200000
	for _, alpha := range []float64{0.4, 0.6, 0.8, 1.0, 1.2, 1.5, 1.8} {
		stream, truth := zipfCounts(n, 100000, alpha, 11)
		cm := frequency.NewCountMin(512, 5, 13)
		cs := frequency.NewCountSketch(512, 5, 13)
		for _, v := range stream {
			cm.AddUint64(v, 1)
			cs.AddUint64(v, 1)
		}
		var cmErr, csErr float64
		for item, want := range truth {
			cmErr += math.Abs(float64(cm.EstimateUint64(item)) - float64(want))
			csErr += math.Abs(float64(cs.EstimateUint64(item)) - float64(want))
		}
		cmErr /= float64(len(truth))
		csErr /= float64(len(truth))
		winner := "count-min"
		if csErr < cmErr {
			winner = "count sketch"
		}
		tbl.AddRow(alpha, cmErr, csErr, winner)
	}
	return &Result{
		ID:     "E4",
		Title:  "Count-Min vs Count Sketch point-query error",
		Claim:  "§2: Count-Min provides 'frequency estimation with L1 instead of L2 guarantees' — the two regimes cross over with skew.",
		Tables: []*core.Table{tbl},
		Notes: []string{
			"Light skew: ‖f‖₂ ≪ ‖f‖₁ so the L2 guarantee wins despite the √w denominator.",
			"Heavy skew: the head dominates ‖f‖₂ and Count-Min's min-over-rows is sharper.",
		},
	}
}

// runE4a measures the conservative-update ablation.
func runE4a() *Result {
	tbl := core.NewTable("E4a: conservative update, n=200k, width=512, depth=4",
		"zipf alpha", "plain total overcount", "conservative total overcount", "reduction")
	const n = 200000
	for _, alpha := range []float64{0.8, 1.0, 1.3} {
		stream, truth := zipfCounts(n, 100000, alpha, 17)
		plain := frequency.NewCountMin(512, 4, 19)
		cons := frequency.NewCountMin(512, 4, 19)
		cons.SetConservative(true)
		for _, v := range stream {
			plain.AddUint64(v, 1)
			cons.AddUint64(v, 1)
		}
		var pErr, cErr float64
		for item, want := range truth {
			pErr += float64(plain.EstimateUint64(item) - want)
			cErr += float64(cons.EstimateUint64(item) - want)
		}
		tbl.AddRow(alpha, pErr, cErr, fmt.Sprintf("%.1fx", pErr/math.Max(cErr, 1)))
	}
	return &Result{
		ID:     "E4a",
		Title:  "Conservative update ablation",
		Claim:  "Design choice called out in DESIGN.md: conservative update trades mergeability for tighter overcounts.",
		Tables: []*core.Table{tbl},
	}
}

// runE4b validates dyadic range queries and quantiles-from-ranges.
func runE4b() *Result {
	tbl := core.NewTable("E4b: dyadic Count-Min range queries over [0,2^20), n=200k uniform",
		"range width", "true count", "estimate", "relerr")
	rng := randx.New(23)
	d := frequency.NewDyadicCountMin(20, 4096, 5, 29)
	const n = 200000
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(rng.Intn(1 << 20))
		d.Add(vals[i], 1)
	}
	for _, width := range []uint64{1 << 8, 1 << 12, 1 << 16, 1 << 19} {
		lo := uint64(1<<19) - width/2
		hi := lo + width - 1
		var want uint64
		for _, v := range vals {
			if v >= lo && v <= hi {
				want++
			}
		}
		got := d.RangeCount(lo, hi)
		tbl.AddRow(width, want, got, core.RelErr(float64(got), float64(want)))
	}
	med := core.NewTable("E4b-median: quantiles via dyadic ranges",
		"q", "estimate", "ideal (uniform)", "relerr")
	for _, q := range []float64{0.25, 0.5, 0.9} {
		got := d.Quantile(q)
		ideal := q * float64(1<<20)
		med.AddRow(q, got, ideal, core.RelErr(float64(got), ideal))
	}
	return &Result{
		ID:     "E4b",
		Title:  "Dyadic range queries",
		Claim:  "The Count-Min paper's range/quantile application: ranges decompose into ≤2·levels dyadic point queries.",
		Tables: []*core.Table{tbl, med},
	}
}

// runE5 compares the two deterministic counter summaries on recall,
// precision and guarantee structure across counter budgets.
func runE5() *Result {
	tbl := core.NewTable("E5: heavy hitters phi=0.005, zipf 1.2, n=200k",
		"k counters", "SS recall", "SS precision", "MG recall", "MG precision")
	const n = 200000
	const phi = 0.005
	stream, truth := zipfCounts(n, 50000, 1.2, 31)
	wantHH := map[string]bool{}
	for item, c := range truth {
		if float64(c) >= phi*float64(n) {
			wantHH[fmt.Sprint(item)] = true
		}
	}
	for _, k := range []int{16, 64, 256, 1024} {
		ss := frequency.NewSpaceSaving(k)
		mg := frequency.NewMisraGries(k)
		for _, v := range stream {
			s := fmt.Sprint(v)
			ss.Add(s, 1)
			mg.Add(s, 1)
		}
		ssR, ssP := recallPrecision(ss.HeavyHitters(phi), wantHH)
		mgR, mgP := recallPrecision(mg.HeavyHitters(phi), wantHH)
		tbl.AddRow(k, ssR, ssP, mgR, mgP)
	}
	return &Result{
		ID:     "E5",
		Title:  "Deterministic heavy hitters",
		Claim:  "§2: SpaceSaving gives 'a fast, deterministic solution to frequency estimation'; 'later connected with the similar Misra–Gries algorithm'.",
		Tables: []*core.Table{tbl},
		Notes:  []string{"Recall is 1.0 once k exceeds 1/phi — the theoretical guarantee; precision improves with k."},
	}
}

func recallPrecision(got []frequency.Entry, want map[string]bool) (recall, precision float64) {
	if len(want) == 0 {
		return 1, 1
	}
	hits := 0
	for _, e := range got {
		if want[e.Item] {
			hits++
		}
	}
	recall = float64(hits) / float64(len(want))
	if len(got) > 0 {
		precision = float64(hits) / float64(len(got))
	}
	return recall, precision
}

// runE5a contrasts uniform and weighted reservoir sampling for
// estimating a skewed total.
func runE5a() *Result {
	tbl := core.NewTable("E5a: reservoir inclusion of the top item, 2000 trials, k=1, 100 items",
		"top item weight share", "uniform inclusion", "weighted inclusion")
	for _, share := range []float64{0.1, 0.33, 0.66} {
		heavyWeight := share * 99 / (1 - share)
		uniformHits, weightedHits := 0, 0
		const trials = 2000
		for trial := 0; trial < trials; trial++ {
			rng := randx.New(uint64(trial) + 1)
			// Uniform pick of 1 from 100.
			if rng.Intn(100) == 0 {
				uniformHits++
			}
			// Weighted reservoir with one heavy item.
			// (exercise the real structure)
			wr := newWeightedTrial(uint64(trial), heavyWeight)
			if wr {
				weightedHits++
			}
		}
		tbl.AddRow(fmt.Sprintf("%.2f", share),
			float64(uniformHits)/2000, float64(weightedHits)/2000)
	}
	return &Result{
		ID:     "E5a",
		Title:  "Weighted vs uniform reservoir",
		Claim:  "§2: 'generalizations of sampling have led to a wide range of statistical techniques' — weighted sampling captures skew a uniform sample misses.",
		Tables: []*core.Table{tbl},
	}
}

// runE9 validates the AMS F2 and inner-product estimators across
// sketch widths.
func runE9() *Result {
	tbl := core.NewTable("E9: AMS estimates on zipf(1.3) n=50k, 5 median groups",
		"perGroup", "F2 relerr", "inner-product relerr", "bytes")
	const n = 50000
	stream, truth := zipfCounts(n, 10000, 1.3, 37)
	var trueF2 float64
	for _, c := range truth {
		trueF2 += float64(c) * float64(c)
	}
	for _, perGroup := range []int{16, 64, 256} {
		s := newAMSPair(5, perGroup, 41)
		for _, v := range stream {
			s.a.AddUint64(v, 1)
			s.b.AddUint64(v, 2) // g = 2f, so <f,g> = 2*F2
		}
		ip, err := s.a.InnerProduct(s.b)
		if err != nil {
			panic(err)
		}
		tbl.AddRow(perGroup,
			core.RelErr(s.a.F2(), trueF2),
			core.RelErr(ip, 2*trueF2),
			s.a.SizeBytes())
	}
	return &Result{
		ID:     "E9",
		Title:  "AMS tug-of-war sketch",
		Claim:  "§2: AMS 'launched the interest' in streaming; the sketch estimates F2 (and by linearity inner products) in O(1/ε²) counters.",
		Tables: []*core.Table{tbl},
	}
}
