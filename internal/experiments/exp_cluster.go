package experiments

import (
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/server"
	"repro/internal/server/client"
)

func init() {
	register("E30", "sharded cluster: ingest scaling, scatter-gather accuracy, replication lag", runE30)
}

// runE30 measures the cluster layer end to end, all in-process over
// loopback HTTP so the numbers isolate the architecture rather than a
// network:
//
//  1. ingest scaling — the same batched loadgen as E25 driven through
//     a coordinator over 1, 2, and 4 shards. Routing is per-item on
//     the consistent-hash ring, so each client batch fans out into
//     per-shard sub-batches posted in parallel; with shards on
//     separate cores, aggregate ingest should scale near-linearly
//     (the acceptance target is ≥3x at 4 shards on a ≥4-core host);
//  2. scatter-gather accuracy — the cluster-wide estimate against
//     ground truth and against a single server fed the identical
//     stream. Merged HLL registers are exactly the single-server
//     registers, so the two estimates must agree to the bit;
//  3. replication lag — a durable shard shipping sealed WAL segments
//     to a follower, reporting the LSN gap before and after a sync
//     round.
//
// E30_ITEMS overrides the per-client item count (CI smoke runs small).
func runE30() *Result {
	itemsPerClient := 1 << 16
	if s := os.Getenv("E30_ITEMS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			itemsPerClient = v
		}
	}
	const clients = 4
	const batch = 1000

	scaling := core.NewTable("coordinator fan-out ingest, hll p14 (loopback HTTP, 4 clients × batch 1000)",
		"shards", "adds", "wall_ms", "adds_per_sec", "speedup_vs_1")
	accuracy := core.NewTable("cluster-wide estimate vs ground truth",
		"shards", "true_distinct", "estimate", "rel_err_pct", "matches_single_server")

	var notes []string
	var baseRate float64
	var speedup4 float64
	for _, nShards := range []int{1, 2, 4} {
		rate, est, trueN, matches, err := runClusterConfig(nShards, clients, batch, itemsPerClient)
		if err != nil {
			return &Result{ID: "E30", Title: "sharded cluster scaling",
				Notes: []string{fmt.Sprintf("cluster with %d shards: %v", nShards, err)}}
		}
		if nShards == 1 {
			baseRate = rate
		}
		speedup := rate / baseRate
		if nShards == 4 {
			speedup4 = speedup
		}
		scaling.AddRow(nShards, clients*itemsPerClient,
			float64(clients*itemsPerClient)/rate*1000, rate, speedup)
		accuracy.AddRow(nShards, trueN, est, 100*math.Abs(est-float64(trueN))/float64(trueN), matches)
	}

	lagTbl, lagNotes := runReplicationLag()

	cores := runtime.GOMAXPROCS(0)
	notes = append(notes,
		fmt.Sprintf("4-shard speedup %.2fx over 1 shard at GOMAXPROCS=%d", speedup4, cores),
		"estimates are bit-identical to a single server fed the same stream: merged per-shard HLL registers equal the unsharded registers",
	)
	if cores >= 4 {
		if speedup4 >= 3 {
			notes = append(notes, "acceptance: ≥3x ingest at 4 shards on a ≥4-core host — met")
		} else {
			notes = append(notes, "acceptance: ≥3x ingest at 4 shards NOT met on this host")
		}
	} else {
		notes = append(notes, fmt.Sprintf(
			"acceptance (≥3x at 4 shards) requires ≥4 cores; this host has GOMAXPROCS=%d, so shards time-slice one core and the run qualifies the harness for CI rather than the speedup", cores))
	}
	notes = append(notes, lagNotes...)

	return &Result{
		ID:     "E30",
		Title:  "sharded cluster: ingest scaling, scatter-gather accuracy, replication lag",
		Claim:  "mergeable summaries make sharding trivial: route anywhere, merge everywhere — per-node sketches compose into the global answer with no accuracy loss (§4 pathways to impact)",
		Tables: []*core.Table{scaling, accuracy, lagTbl},
		Notes:  notes,
	}
}

// runClusterConfig stands up nShards in-process sketchds plus a
// coordinator, drives the standard loadgen through the coordinator,
// and checks the global estimate against ground truth and against a
// single server fed the same items.
func runClusterConfig(nShards, clients, batch, itemsPerClient int) (rate, est float64, trueN int, matches bool, err error) {
	urls := make([]string, nShards)
	var stops []func()
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	for i := range urls {
		base, stop, serr := startLocalSketchd()
		if serr != nil {
			return 0, 0, 0, false, serr
		}
		urls[i] = base
		stops = append(stops, stop)
	}
	coordBase, stopCoord, err := startCoordinator(urls)
	if err != nil {
		return 0, 0, 0, false, err
	}
	stops = append(stops, stopCoord)

	cl := client.New(coordBase)
	if err := cl.Create("e30", server.CreateRequest{Type: "hll", P: 14, Seed: 1}); err != nil {
		return 0, 0, 0, false, err
	}
	adds, _, elapsed := driveIngest(coordBase, "e30", clients, batch, itemsPerClient)
	rate = float64(adds) / elapsed.Seconds()
	trueN = adds

	est, err = cl.Estimate("e30", nil)
	if err != nil {
		return 0, 0, 0, false, err
	}

	// Single-server control with the identical stream.
	single, stopSingle, err := startLocalSketchd()
	if err != nil {
		return 0, 0, 0, false, err
	}
	stops = append(stops, stopSingle)
	scl := client.New(single)
	if err := scl.Create("e30", server.CreateRequest{Type: "hll", P: 14, Seed: 1}); err != nil {
		return 0, 0, 0, false, err
	}
	driveIngest(single, "e30", clients, batch, itemsPerClient)
	sEst, err := scl.Estimate("e30", nil)
	if err != nil {
		return 0, 0, 0, false, err
	}
	return rate, est, trueN, est == sEst, nil
}

// runReplicationLag ships a durable shard's WAL to a follower and
// reads the LSN gap off the leader's status before and after a sync.
func runReplicationLag() (*core.Table, []string) {
	tbl := core.NewTable("WAL-shipped replication, 64 ingest batches",
		"point", "leader_wal_lsn", "follower_applied", "lag_records", "sync_ms")
	fail := func(err error) (*core.Table, []string) {
		return tbl, []string{fmt.Sprintf("replication lag run failed: %v", err)}
	}

	dir, err := os.MkdirTemp("", "e30-repl-*")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(dir)

	leader := server.New()
	if _, err := leader.EnableDurability(dir, durable.Options{
		FsyncInterval: 0, SnapshotInterval: -1, WALMaxBytes: 64 << 20,
	}); err != nil {
		return fail(err)
	}
	defer leader.CloseDurability()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	hs := &http.Server{Handler: leader.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	lcl := client.New(base)
	if err := lcl.Create("e30", server.CreateRequest{Type: "hll", P: 14, Seed: 1}); err != nil {
		return fail(err)
	}
	const batches = 64
	buf := make([]byte, 0, 1000*12)
	for b := 0; b < batches; b++ {
		buf = buf[:0]
		for i := 0; i < 1000; i++ {
			buf = strconv.AppendInt(buf, int64(b)<<32|int64(i), 10)
			buf = append(buf, '\n')
		}
		if err := lcl.AddBatch("e30", buf); err != nil {
			return fail(err)
		}
	}

	fsrv := server.New()
	rep := cluster.NewReplica(base, fsrv, cluster.ReplicaOptions{})
	st := leader.DurabilityStatus()
	tbl.AddRow("before sync", st.WALLSN, rep.Applied(), st.WALLSN-rep.Applied(), 0.0)

	start := time.Now()
	if err := rep.SyncOnce(); err != nil {
		return fail(err)
	}
	syncMS := float64(time.Since(start).Microseconds()) / 1000
	st = leader.DurabilityStatus()
	tbl.AddRow("after sync", st.WALLSN, rep.Applied(), st.WALLSN-rep.Applied(), syncMS)

	notes := []string{fmt.Sprintf(
		"one sync round ships every sealed segment and closes a %d-record lag in %.1fms; the leader reports the gap live on /v1/status",
		batches+1, syncMS)}
	if rep.Applied() != st.WALLSN {
		notes = append(notes, fmt.Sprintf("WARNING: follower applied %d != leader wal_lsn %d after sync", rep.Applied(), st.WALLSN))
	}
	return tbl, notes
}

// startCoordinator serves a cluster coordinator over the given shard
// URLs on an ephemeral loopback port.
func startCoordinator(shards []string) (string, func(), error) {
	coord, err := cluster.NewCoordinator(shards, cluster.Options{})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: coord}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() { hs.Close() }, nil
}
