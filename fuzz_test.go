package sketch_test

// Fuzz targets for every UnmarshalBinary in the library: arbitrary
// bytes must either decode into a usable sketch or return an error —
// never panic, never hang, never allocate unboundedly. The seed corpus
// (valid serializations plus mutations) runs under plain `go test`;
// `go test -fuzz=FuzzX` explores further.

import (
	"encoding"
	"testing"

	sketch "repro"
	"repro/internal/bloom"
	"repro/internal/cardinality"
	"repro/internal/concurrent"
	"repro/internal/durable"
	"repro/internal/frequency"
	typereg "repro/internal/registry"
	"repro/internal/robust"
	"repro/internal/server"
)

// corpusFor seeds a fuzzer with a valid serialization and a few
// deterministic mutations of it.
func corpusFor(f *testing.F, data []byte) {
	f.Add(data)
	if len(data) > 8 {
		trunc := data[:len(data)/2]
		f.Add(trunc)
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)-1] ^= 0xff
		f.Add(flipped)
		flipped2 := append([]byte(nil), data...)
		flipped2[6] ^= 0x80
		f.Add(flipped2)
	}
	f.Add([]byte{})
	f.Add([]byte("GSK1"))
}

func FuzzBloomUnmarshal(f *testing.F) {
	b := sketch.NewBloomWithEstimates(100, 0.01, 1)
	b.AddString("seed")
	data, _ := b.MarshalBinary()
	corpusFor(f, data)
	f.Fuzz(func(t *testing.T, in []byte) {
		var g sketch.BloomFilter
		if err := g.UnmarshalBinary(in); err == nil {
			g.AddString("post")
			_ = g.ContainsString("post")
		}
	})
}

func FuzzHLLUnmarshal(f *testing.F) {
	h := sketch.NewHLL(10, 2)
	for i := 0; i < 1000; i++ {
		h.AddUint64(uint64(i))
	}
	data, _ := h.MarshalBinary()
	corpusFor(f, data)
	f.Fuzz(func(t *testing.T, in []byte) {
		var g sketch.HLLSketch
		if err := g.UnmarshalBinary(in); err == nil {
			g.AddUint64(42)
			_ = g.Estimate()
		}
	})
}

func FuzzHLLPPUnmarshal(f *testing.F) {
	h := sketch.NewHLLPP(10, 3)
	for i := 0; i < 500; i++ {
		h.AddUint64(uint64(i))
	}
	data, _ := h.MarshalBinary()
	corpusFor(f, data)
	f.Fuzz(func(t *testing.T, in []byte) {
		var g sketch.HLLPPSketch
		if err := g.UnmarshalBinary(in); err == nil {
			g.AddUint64(42)
			_ = g.Estimate()
		}
	})
}

func FuzzCountMinUnmarshal(f *testing.F) {
	c := sketch.NewCountMin(64, 3, 4)
	c.AddString("seed")
	data, _ := c.MarshalBinary()
	corpusFor(f, data)
	fused := sketch.NewCountMinFused(64, 3, 4)
	fused.AddString("seed")
	fdata, _ := fused.MarshalBinary()
	corpusFor(f, fdata)
	// A version-2 envelope carrying the fused mode byte: the layout
	// cannot agree with the byte, and the decoder must reject it (the
	// PR 2 pattern that made v1 Bloom payloads unreachable). Flip the
	// version byte on a valid v3 fused envelope to build the seed.
	if len(fdata) > 8 {
		v2 := append([]byte(nil), fdata...)
		v2[5] = 2 // GSK1 magic (4) + tag (1), then version
		f.Add(v2)
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		var g sketch.CountMin
		if err := g.UnmarshalBinary(in); err == nil {
			g.AddString("post")
			_ = g.EstimateString("post")
		}
	})
}

func FuzzCountSketchUnmarshal(f *testing.F) {
	c := sketch.NewCountSketch(64, 3, 5)
	c.AddUint64(7, 3)
	data, _ := c.MarshalBinary()
	corpusFor(f, data)
	fused := sketch.NewCountSketchFused(64, 3, 5)
	fused.AddUint64(7, 3)
	fdata, _ := fused.MarshalBinary()
	corpusFor(f, fdata)
	if len(fdata) > 8 {
		v2 := append([]byte(nil), fdata...)
		v2[5] = 2 // see FuzzCountMinUnmarshal: fused byte in a v2 envelope
		f.Add(v2)
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		var g sketch.CountSketch
		if err := g.UnmarshalBinary(in); err == nil {
			g.AddUint64(9, 1)
			_ = g.EstimateUint64(9)
		}
	})
}

func FuzzSFDecode(f *testing.F) {
	s := sketch.NewSFSketch(64, 3, 256, 3, 4)
	s.AddString("seed")
	s.AddUint64(7, 3)
	full, _ := s.MarshalBinary()
	corpusFor(f, full)
	slim, _ := s.MarshalSlim()
	corpusFor(f, slim)
	// A mode byte beyond slim in an otherwise valid envelope.
	if len(full) > 8 {
		bad := append([]byte(nil), full...)
		bad[6] = 2 // GSK1 magic (4) + tag (1) + version (1), then mode
		f.Add(bad)
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		var g sketch.SFSketch
		if err := g.UnmarshalBinary(in); err == nil {
			g.AddString("post")
			_ = g.EstimateString("post")
			_ = g.SlimOnly()
			if out, err := g.MarshalBinary(); err != nil {
				t.Fatalf("re-marshal of decoded sketch failed: %v", err)
			} else if len(out) == 0 {
				t.Fatal("empty re-marshal")
			}
		}
	})
}

func FuzzBlockedBloomUnmarshal(f *testing.F) {
	b := sketch.NewBlockedBloomWithEstimates(100, 0.01, 1)
	b.AddString("seed")
	data, _ := b.MarshalBinary()
	corpusFor(f, data)
	// The classic filter's envelope must never decode as a blocked one
	// (the layouts address different bits); seed it so the fuzzer
	// exercises the tag check from the start.
	classic := sketch.NewBloomWithEstimates(100, 0.01, 1)
	classic.AddString("seed")
	cdata, _ := classic.MarshalBinary()
	f.Add(cdata)
	f.Fuzz(func(t *testing.T, in []byte) {
		var g sketch.BlockedBloomFilter
		if err := g.UnmarshalBinary(in); err == nil {
			g.AddString("post")
			if !g.ContainsString("post") {
				t.Fatal("decoded blocked filter lost a fresh insert")
			}
		}
	})
}

func FuzzKLLUnmarshal(f *testing.F) {
	k := sketch.NewKLL(64, 6)
	for i := 0; i < 5000; i++ {
		k.Add(float64(i))
	}
	data, _ := k.MarshalBinary()
	corpusFor(f, data)
	f.Fuzz(func(t *testing.T, in []byte) {
		var g sketch.KLLSketch
		if err := g.UnmarshalBinary(in); err == nil {
			g.Add(1)
			_ = g.Quantile(0.5)
		}
	})
}

func FuzzTDigestUnmarshal(f *testing.F) {
	td := sketch.NewTDigest(50)
	for i := 0; i < 2000; i++ {
		td.Add(float64(i))
	}
	data, _ := td.MarshalBinary()
	corpusFor(f, data)
	f.Fuzz(func(t *testing.T, in []byte) {
		var g sketch.TDigest
		if err := g.UnmarshalBinary(in); err == nil {
			g.Add(1)
			_ = g.Quantile(0.9)
		}
	})
}

func FuzzQDigestUnmarshal(f *testing.F) {
	qd := sketch.NewQDigest(10, 32)
	for i := uint64(0); i < 1000; i++ {
		qd.Add(i%1024, 1)
	}
	data, _ := qd.MarshalBinary()
	corpusFor(f, data)
	f.Fuzz(func(t *testing.T, in []byte) {
		var g sketch.QDigest
		if err := g.UnmarshalBinary(in); err == nil {
			_ = g.Quantile(0.5)
		}
	})
}

func FuzzThetaUnmarshal(f *testing.F) {
	th := sketch.NewTheta(64, 7)
	for i := 0; i < 5000; i++ {
		th.AddUint64(uint64(i))
	}
	data, _ := th.MarshalBinary()
	corpusFor(f, data)
	f.Fuzz(func(t *testing.T, in []byte) {
		var g sketch.ThetaSketch
		if err := g.UnmarshalBinary(in); err == nil {
			g.AddUint64(1)
			_ = g.Estimate()
		}
	})
}

func FuzzKMVUnmarshal(f *testing.F) {
	k := sketch.NewKMV(32, 8)
	for i := 0; i < 5000; i++ {
		k.AddUint64(uint64(i))
	}
	data, _ := k.MarshalBinary()
	corpusFor(f, data)
	f.Fuzz(func(t *testing.T, in []byte) {
		var g sketch.KMVSketch
		if err := g.UnmarshalBinary(in); err == nil {
			g.AddUint64(1)
			_ = g.Estimate()
		}
	})
}

func FuzzREQUnmarshal(f *testing.F) {
	r := sketch.NewREQ(16, 9)
	for i := 0; i < 5000; i++ {
		r.Add(float64(i))
	}
	data, _ := r.MarshalBinary()
	corpusFor(f, data)
	f.Fuzz(func(t *testing.T, in []byte) {
		var g sketch.REQSketch
		if err := g.UnmarshalBinary(in); err == nil {
			g.Add(1)
			_ = g.Quantile(0.99)
		}
	})
}

func FuzzMinHashUnmarshal(f *testing.F) {
	m := sketch.NewMinHash(32, 10)
	m.AddString("seed")
	data, _ := m.MarshalBinary()
	corpusFor(f, data)
	f.Fuzz(func(t *testing.T, in []byte) {
		var g sketch.MinHash
		if err := g.UnmarshalBinary(in); err == nil {
			g.AddString("post")
		}
	})
}

func FuzzMisraGriesUnmarshal(f *testing.F) {
	m := sketch.NewMisraGries(16)
	m.AddString("seed")
	data, _ := m.MarshalBinary()
	corpusFor(f, data)
	f.Fuzz(func(t *testing.T, in []byte) {
		var g sketch.MisraGries
		if err := g.UnmarshalBinary(in); err == nil {
			g.AddString("post")
			_ = g.Estimate("post")
		}
	})
}

func FuzzSpaceSavingUnmarshal(f *testing.F) {
	s := sketch.NewSpaceSaving(16)
	s.AddString("seed")
	data, _ := s.MarshalBinary()
	corpusFor(f, data)
	f.Fuzz(func(t *testing.T, in []byte) {
		var g sketch.SpaceSaving
		if err := g.UnmarshalBinary(in); err == nil {
			g.AddString("post")
			_ = g.Estimate("post")
		}
	})
}

func FuzzMorrisUnmarshal(f *testing.F) {
	m := sketch.NewMorrisBase(1.2, 11)
	for i := 0; i < 1000; i++ {
		m.Increment()
	}
	data, _ := m.MarshalBinary()
	corpusFor(f, data)
	f.Fuzz(func(t *testing.T, in []byte) {
		var g sketch.MorrisCounter
		if err := g.UnmarshalBinary(in); err == nil {
			g.Increment()
			_ = g.Count()
		}
	})
}

// FuzzServerRequestDecode drives sketchd's two request decoders — the
// newline-batch splitter feeding Entry.Add and the merge-envelope
// decoder feeding Entry.Merge — with arbitrary bodies against every
// registered sketch type. Any input must either ingest or return an
// error; panics and hangs are bugs in the serving layer's input
// validation.
func FuzzServerRequestDecode(f *testing.F) {
	h := sketch.NewHLL(10, 1)
	h.AddUint64(7)
	env, _ := h.MarshalBinary()
	corpusFor(f, env)
	f.Add([]byte("alpha\nbeta\r\ngamma\t12\n3.5\n"))
	f.Add([]byte("item\t18446744073709551616\n")) // weight overflows uint64
	f.Add([]byte("\n\r\n\t\n"))

	types := []sketch.ServerCreateRequest{
		{Type: "hll", P: 10, Shards: 2, Seed: 1},
		{Type: "countmin", Width: 128, Depth: 3, Seed: 1},
		{Type: "bloom", NItems: 1000, FPR: 0.01, Seed: 1},
		{Type: "kll", K: 64, Seed: 1},
		{Type: "theta", K: 64, Seed: 1},
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		if len(in) > 64<<10 {
			t.Skip("body size is bounded by maxBodyBytes in the server; keep fuzz execs fast")
		}
		items := server.SplitBatch(in)
		for _, req := range types {
			e, err := server.NewEntry(req)
			if err != nil {
				t.Fatalf("NewEntry(%v): %v", req.Type, err)
			}
			// Ingest must not panic and must not mutate on rejected
			// batches in a way that breaks subsequent use.
			_ = e.Add(items)
			if _, err := e.Snapshot(); err != nil {
				t.Errorf("%s: snapshot after add: %v", req.Type, err)
			}
			// Merge of arbitrary bytes must either succeed (valid
			// same-type envelope) or error cleanly.
			_ = e.Merge(in)
			if _, err := e.Snapshot(); err != nil {
				t.Errorf("%s: snapshot after merge: %v", req.Type, err)
			}
		}
	})
}

func FuzzReservoirUnmarshal(f *testing.F) {
	r := sketch.NewReservoir(8, 12)
	for i := 0; i < 100; i++ {
		r.AddString("item")
	}
	data, _ := r.MarshalBinary()
	corpusFor(f, data)
	f.Fuzz(func(t *testing.T, in []byte) {
		var g sketch.Reservoir
		if err := g.UnmarshalBinary(in); err == nil {
			g.AddString("post")
			_ = g.Sample()
		}
	})
}

// FuzzGenericDecode hammers the registry's self-describing decode path
// with one valid payload per registered family in the seed corpus:
// arbitrary bytes must decode-or-error, never panic, and any payload
// that does decode must serialize again.
func FuzzGenericDecode(f *testing.F) {
	// Families whose default shape serializes to hundreds of KB get a
	// deliberately small seed shape — mutation throughput over payloads
	// that size is too low to explore anything.
	small := map[string]map[string]float64{
		"bloom":         {"m": 1024, "k": 4},
		"blockedbloom":  {"m": 1024, "k": 4},
		"countingbloom": {"m": 1024},
		"graphsketch":   {"vertices": 16, "rounds": 4},
		"countsketch":   {"width": 64, "depth": 3},
		"countmin":      {"width": 64, "depth": 4},
		"ams":           {"groups": 3, "per_group": 16},
	}
	for _, ti := range sketch.Types() {
		inst, err := sketch.New(ti.Name, 1, small[ti.Name])
		if err != nil {
			f.Fatalf("New(%q): %v", ti.Name, err)
		}
		m, ok := inst.(encoding.BinaryMarshaler)
		if !ok {
			f.Fatalf("%q does not marshal", ti.Name)
		}
		data, err := m.MarshalBinary()
		if err != nil {
			f.Fatalf("%q marshal: %v", ti.Name, err)
		}
		f.Add(data)
		// One tag-preserving mutation per family, to get the fuzzer past
		// the envelope header into family-specific decoders.
		if len(data) > 8 {
			mut := append([]byte(nil), data...)
			mut[len(mut)/2] ^= 0x55
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("GSK1"))
	f.Fuzz(func(t *testing.T, in []byte) {
		inst, name, err := sketch.DecodeInfo(in)
		if err != nil {
			return
		}
		m, ok := inst.(encoding.BinaryMarshaler)
		if !ok {
			t.Fatalf("decoded %q does not marshal", name)
		}
		if _, err := m.MarshalBinary(); err != nil {
			t.Fatalf("decoded %q fails to re-marshal: %v", name, err)
		}
	})
}

// FuzzWALReplay feeds arbitrary bytes to the durable WAL replayer. The
// invariants under corruption: never panic, never consume past the
// input, never replay a record the caller already has (LSN must be
// strictly increasing and above the floor), and every replayed record
// must itself re-encode to a frame the replayer accepts.
func FuzzWALReplay(f *testing.F) {
	valid := durable.WALHeader()
	for lsn := uint64(1); lsn <= 3; lsn++ {
		valid = durable.AppendRecord(valid, durable.Record{
			LSN: lsn, Op: durable.OpIngest, Name: "s", Body: []byte("alpha\nbeta"),
		})
	}
	corpusFor(f, valid)
	torn := append([]byte(nil), valid[:len(valid)-3]...)
	f.Add(torn)
	f.Add(durable.WALHeader())
	f.Fuzz(func(t *testing.T, in []byte) {
		const floor = uint64(1)
		prev := floor
		var replayed int
		consumed, last, err := durable.ReplayLog(in, floor, func(r durable.Record) error {
			if r.LSN <= prev {
				t.Fatalf("replayed LSN %d after %d: not strictly increasing above the floor", r.LSN, prev)
			}
			prev = r.LSN
			replayed++
			return nil
		})
		if err != nil {
			return // corrupt header: nothing may have been replayed before it
		}
		if consumed > len(in) {
			t.Fatalf("consumed %d of %d input bytes", consumed, len(in))
		}
		if replayed > 0 && last != prev {
			t.Fatalf("ReplayLog reports last LSN %d, callback saw %d", last, prev)
		}
		// The valid prefix must replay identically a second time.
		var again int
		if _, _, err := durable.ReplayLog(in[:consumed], floor, func(durable.Record) error {
			again++
			return nil
		}); err != nil && consumed > 0 {
			t.Fatalf("valid prefix failed to replay: %v", err)
		}
		if again != replayed {
			t.Fatalf("prefix replayed %d records, first pass %d", again, replayed)
		}
	})
}

// FuzzBufferedMerge exercises the PR 6 buffered (local-buffer/global-
// propagation) families' merge surface: arbitrary bytes that decode as
// a plain family envelope are merged into a live buffered instance —
// shape/seed mismatches must error cleanly, compatible payloads must
// fold in, and nothing may panic or wedge the propagator. The buffered
// instances are shared across iterations (created once here, not per
// fuzz case) so the target doesn't spawn a goroutine per input.
func FuzzBufferedMerge(f *testing.F) {
	cmSeed := frequencyCountMinSeed()
	hllSeed := cardinalityHLLSeed()
	bloomSeed := bloomBlockedSeed()
	corpusFor(f, cmSeed)
	f.Add(hllSeed)
	f.Add(bloomSeed)

	bcm := concurrent.NewBufferedCountMin(64, 4, 1)
	bh := concurrent.NewBufferedHLL(10, 2)
	bb := concurrent.NewBufferedBlockedBloom(1024, 4, 3)
	f.Cleanup(func() {
		bcm.Close()
		bh.Close()
		bb.Close()
	})
	f.Fuzz(func(t *testing.T, in []byte) {
		var cm frequency.CountMin
		if err := cm.UnmarshalBinary(in); err == nil {
			_ = bcm.Merge(&cm)
			_ = bcm.EstimateUint64(42)
			_ = bcm.N()
		}
		var h cardinality.HLL
		if err := h.UnmarshalBinary(in); err == nil {
			_ = bh.Merge(&h)
			_ = bh.Estimate()
		}
		var bf bloom.BlockedFilter
		if err := bf.UnmarshalBinary(in); err == nil {
			_ = bb.Merge(&bf)
			_ = bb.Contains(in)
		}
	})
}

// FuzzBufferedIngest drives the registry's buffered serving ingest
// closures (pooled-writer batch path, including the validate-whole-
// batch weight parsing) with arbitrary newline batches: a bad line
// must reject the batch with an error and no partial state panic-free.
func FuzzBufferedIngest(f *testing.F) {
	f.Add([]byte("item\t3\nplain\nx\t18446744073709551615"))
	f.Add([]byte("a\tb"))
	f.Add([]byte("\t\n\t\t\n"))
	f.Add([]byte(""))
	cmDesc, _ := typereg.Lookup("countmin")
	hllDesc, _ := typereg.Lookup("hll")
	bloomDesc, _ := typereg.Lookup("blockedbloom")
	bcm := concurrent.NewBufferedCountMin(64, 4, 1)
	bh := concurrent.NewBufferedHLL(10, 2)
	bb := concurrent.NewBufferedBlockedBloom(1024, 4, 3)
	f.Cleanup(func() {
		bcm.Close()
		bh.Close()
		bb.Close()
	})
	f.Fuzz(func(t *testing.T, in []byte) {
		items := server.SplitBatch(in)
		_ = cmDesc.Serve.Ingest(bcm, items)
		_ = hllDesc.Serve.Ingest(bh, items)
		_ = bloomDesc.Serve.Ingest(bb, items)
	})
}

// Seed-envelope builders for the buffered fuzz targets, matching the
// buffered instances' shapes so compatible merges actually execute.
func frequencyCountMinSeed() []byte {
	cm := frequency.NewCountMin(64, 4, 1)
	for i := 0; i < 100; i++ {
		cm.AddUint64(uint64(i), 1)
	}
	data, _ := cm.MarshalBinary()
	return data
}

func cardinalityHLLSeed() []byte {
	h := cardinality.NewHLL(10, 2)
	for i := 0; i < 1000; i++ {
		h.AddUint64(uint64(i))
	}
	data, _ := h.MarshalBinary()
	return data
}

func bloomBlockedSeed() []byte {
	bf := bloom.NewBlocked(1024, 4, 3)
	bf.AddString("seed")
	data, _ := bf.MarshalBinary()
	return data
}

// FuzzRobustDistinctDecode: the robustdistinct envelope nests a full
// HLL serialization per switching copy plus six parameter fields, all
// of which must validate before any copy decode is trusted. A decode
// that succeeds must round-trip: re-marshal, decode again, and answer
// queries without panicking — the registry's crash-recovery path
// (decode + merge into a fresh serving instance) relies on exactly
// that.
func FuzzRobustDistinctDecode(f *testing.F) {
	d := robust.NewDefendedDistinct(0.05, 4, 8, 1, 0.1, 0.5)
	for i := 0; i < 500; i++ {
		d.AddUint64(uint64(i))
	}
	d.Estimate() // bake switching state (cur/last) into the envelope
	data, _ := d.MarshalBinary()
	corpusFor(f, data)
	f.Fuzz(func(t *testing.T, in []byte) {
		var g robust.Distinct
		if g.UnmarshalBinary(in) != nil {
			return
		}
		g.AddUint64(42)
		_ = g.Estimate()
		round, err := g.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of decoded sketch: %v", err)
		}
		var h robust.Distinct
		if err := h.UnmarshalBinary(round); err != nil {
			t.Fatalf("round-trip decode: %v", err)
		}
	})
}
