package sketch_test

// One testing.B benchmark per experiment in DESIGN.md §2: running
// `go test -bench=.` regenerates every row of EXPERIMENTS.md (the
// experiment bodies print nothing here; cmd/sketchbench prints the
// tables). Per-operation micro-benchmarks for individual sketches live
// in their own packages under internal/.

import (
	"testing"

	"repro/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1Morris(b *testing.B)          { benchExperiment(b, "E1") }
func BenchmarkE2Cardinality(b *testing.B)     { benchExperiment(b, "E2") }
func BenchmarkE3Bloom(b *testing.B)           { benchExperiment(b, "E3") }
func BenchmarkE4PointQuery(b *testing.B)      { benchExperiment(b, "E4") }
func BenchmarkE4aConservative(b *testing.B)   { benchExperiment(b, "E4a") }
func BenchmarkE4bDyadicRange(b *testing.B)    { benchExperiment(b, "E4b") }
func BenchmarkE5HeavyHitters(b *testing.B)    { benchExperiment(b, "E5") }
func BenchmarkE5aWeightedSample(b *testing.B) { benchExperiment(b, "E5a") }
func BenchmarkE6Quantiles(b *testing.B)       { benchExperiment(b, "E6") }
func BenchmarkE6aTailQuantiles(b *testing.B)  { benchExperiment(b, "E6a") }
func BenchmarkE7Merge(b *testing.B)           { benchExperiment(b, "E7") }
func BenchmarkE7aConcurrent(b *testing.B)     { benchExperiment(b, "E7a") }
func BenchmarkE8HLLPP(b *testing.B)           { benchExperiment(b, "E8") }
func BenchmarkE9AMS(b *testing.B)             { benchExperiment(b, "E9") }
func BenchmarkE10JL(b *testing.B)             { benchExperiment(b, "E10") }
func BenchmarkE11LSH(b *testing.B)            { benchExperiment(b, "E11") }
func BenchmarkE12Graph(b *testing.B)          { benchExperiment(b, "E12") }
func BenchmarkE13Robust(b *testing.B)         { benchExperiment(b, "E13") }
func BenchmarkE14AdReach(b *testing.B)        { benchExperiment(b, "E14") }
func BenchmarkE15Privacy(b *testing.B)        { benchExperiment(b, "E15") }
func BenchmarkE16FetchSGD(b *testing.B)       { benchExperiment(b, "E16") }
func BenchmarkE17REQ(b *testing.B)            { benchExperiment(b, "E17") }
func BenchmarkE18TensorSketch(b *testing.B)   { benchExperiment(b, "E18") }
func BenchmarkE19MatrixSketch(b *testing.B)   { benchExperiment(b, "E19") }
func BenchmarkE20SlidingWindow(b *testing.B)  { benchExperiment(b, "E20") }
func BenchmarkE21LpSampler(b *testing.B)      { benchExperiment(b, "E21") }
func BenchmarkE22SparseRecovery(b *testing.B) { benchExperiment(b, "E22") }
func BenchmarkE23ThetaAlgebra(b *testing.B)   { benchExperiment(b, "E23") }
func BenchmarkE24Federated(b *testing.B)      { benchExperiment(b, "E24") }
