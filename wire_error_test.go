package sketch_test

// Error-path coverage for the shared serialization envelope
// (internal/core/wire.go) as exercised through real sketches — the
// input-validation contract the sketchd merge endpoint depends on:
// truncated envelopes, future version tags, and cross-type unmarshal
// must all return ErrCorrupt/ErrIncompatible-class errors, never
// panic.

import (
	"errors"
	"testing"

	sketch "repro"
)

// marshaler pairs a name with a sketch serialization and a decode
// probe into a different sketch value of the same type.
type wireCase struct {
	name string
	data []byte
	dec  func([]byte) error
}

func wireCases(t *testing.T) []wireCase {
	t.Helper()
	h := sketch.NewHLL(12, 1)
	cm := sketch.NewCountMin(256, 3, 2)
	bf := sketch.NewBloom(1<<12, 4, 3)
	kll := sketch.NewKLL(64, 4)
	th := sketch.NewTheta(128, 5)
	for i := 0; i < 2000; i++ {
		h.AddUint64(uint64(i))
		cm.AddUint64(uint64(i%50), 1)
		bf.Add([]byte{byte(i), byte(i >> 8)})
		kll.Add(float64(i))
		th.AddUint64(uint64(i))
	}
	mustMarshal := func(data []byte, err error) []byte {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	return []wireCase{
		{"hll", mustMarshal(h.MarshalBinary()),
			func(b []byte) error { var g sketch.HLLSketch; return g.UnmarshalBinary(b) }},
		{"countmin", mustMarshal(cm.MarshalBinary()),
			func(b []byte) error { var g sketch.CountMin; return g.UnmarshalBinary(b) }},
		{"bloom", mustMarshal(bf.MarshalBinary()),
			func(b []byte) error { var g sketch.BloomFilter; return g.UnmarshalBinary(b) }},
		{"kll", mustMarshal(kll.MarshalBinary()),
			func(b []byte) error { var g sketch.KLLSketch; return g.UnmarshalBinary(b) }},
		{"theta", mustMarshal(th.MarshalBinary()),
			func(b []byte) error { var g sketch.ThetaSketch; return g.UnmarshalBinary(b) }},
	}
}

func wantWireError(t *testing.T, ctx string, err error) {
	t.Helper()
	if err == nil {
		t.Errorf("%s: decode succeeded on invalid input", ctx)
		return
	}
	if !errors.Is(err, sketch.ErrCorrupt) && !errors.Is(err, sketch.ErrIncompatible) {
		t.Errorf("%s: error %v is neither ErrCorrupt nor ErrIncompatible", ctx, err)
	}
}

func TestUnmarshalTruncatedEnvelopes(t *testing.T) {
	for _, c := range wireCases(t) {
		// Every strict prefix must be rejected cleanly.
		for cut := 0; cut < len(c.data); cut++ {
			wantWireError(t, c.name, c.dec(c.data[:cut]))
		}
	}
}

func TestUnmarshalWrongVersionTag(t *testing.T) {
	for _, c := range wireCases(t) {
		// Byte 5 of the envelope is the format version; a future
		// version must be rejected up front, not misparsed.
		bumped := append([]byte(nil), c.data...)
		bumped[5] = 0xEE
		wantWireError(t, c.name+" future-version", c.dec(bumped))
		zeroed := append([]byte(nil), c.data...)
		zeroed[5] = 0
		wantWireError(t, c.name+" version-zero", c.dec(zeroed))
	}
}

// TestUnmarshalCorruptCounts overwrites the element-count field of
// each hand-rolled decode loop with 0xFFFFFFFF. The decoder must
// reject it immediately (fuzz-found: a t-digest envelope with a bogus
// centroid count previously spun for minutes allocating and walking a
// four-billion-entry loop before this was guarded by Reader.Count).
func TestUnmarshalCorruptCounts(t *testing.T) {
	mustMarshal := func(data []byte, err error) []byte {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	td := sketch.NewTDigest(50)
	gk := sketch.NewGK(0.01)
	qd := sketch.NewQDigest(16, 32)
	mg := sketch.NewMisraGries(16)
	ss := sketch.NewSpaceSaving(16)
	for i := 0; i < 500; i++ {
		td.Add(float64(i))
		gk.Add(float64(i))
		qd.Add(uint64(i%1024), 1)
		mg.AddString("item" + string(rune('a'+i%8)))
		ss.AddString("item" + string(rune('a'+i%8)))
	}
	cases := []struct {
		name     string
		data     []byte
		countOff int // byte offset of the U32 element count
		dec      func([]byte) error
	}{
		// Offsets: 6-byte envelope header, then the fixed fields that
		// precede each count (see the matching MarshalBinary).
		{"tdigest", mustMarshal(td.MarshalBinary()), 6 + 8 + 8 + 8 + 8,
			func(b []byte) error { var g sketch.TDigest; return g.UnmarshalBinary(b) }},
		{"gk", mustMarshal(gk.MarshalBinary()), 6 + 8 + 8,
			func(b []byte) error { var g sketch.GKSummary; return g.UnmarshalBinary(b) }},
		{"qdigest", mustMarshal(qd.MarshalBinary()), 6 + 1 + 8 + 8,
			func(b []byte) error { var g sketch.QDigest; return g.UnmarshalBinary(b) }},
		{"misragries", mustMarshal(mg.MarshalBinary()), 6 + 4 + 8 + 8,
			func(b []byte) error { var g sketch.MisraGries; return g.UnmarshalBinary(b) }},
		{"spacesaving", mustMarshal(ss.MarshalBinary()), 6 + 4 + 8,
			func(b []byte) error { var g sketch.SpaceSaving; return g.UnmarshalBinary(b) }},
	}
	for _, c := range cases {
		// Sanity: the untouched envelope round-trips.
		if err := c.dec(c.data); err != nil {
			t.Fatalf("%s: valid envelope rejected: %v", c.name, err)
		}
		bad := append([]byte(nil), c.data...)
		for i := 0; i < 4; i++ {
			bad[c.countOff+i] = 0xFF
		}
		wantWireError(t, c.name+" corrupt-count", c.dec(bad))
	}
}

// TestUnmarshalCorruptBloomK corrupts the hash-function count of a
// Bloom envelope: k multiplies the cost of every subsequent Add and
// Contains, so a decoded multi-billion k turns the first membership
// operation into a minutes-long spin (fuzz-found).
func TestUnmarshalCorruptBloomK(t *testing.T) {
	bf := sketch.NewBloom(1<<10, 4, 3)
	bf.AddString("x")
	cbf := sketch.NewCountingBloom(1<<10, 4, 3)
	cbf.Add([]byte("x"))
	bfData, err := bf.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cbfData, err := cbf.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		dec  func([]byte) error
	}{
		{"bloom", bfData,
			func(b []byte) error { var g sketch.BloomFilter; return g.UnmarshalBinary(b) }},
		{"countingbloom", cbfData,
			func(b []byte) error { var g sketch.CountingBloomFilter; return g.UnmarshalBinary(b) }},
	}
	for _, c := range cases {
		if err := c.dec(c.data); err != nil {
			t.Fatalf("%s: valid envelope rejected: %v", c.name, err)
		}
		// k is the U32 after the 6-byte header and the U64 bit count m.
		bad := append([]byte(nil), c.data...)
		for i := 0; i < 4; i++ {
			bad[6+8+i] = 0xFF
		}
		wantWireError(t, c.name+" corrupt-k", c.dec(bad))
	}
}

func TestUnmarshalCrossType(t *testing.T) {
	cases := wireCases(t)
	for _, src := range cases {
		for _, dst := range cases {
			if src.name == dst.name {
				continue
			}
			wantWireError(t, src.name+"→"+dst.name, dst.dec(src.data))
		}
	}
}
