// Package sketch is the public facade of the library: a single import
// exposing every data summary surveyed in "Gems of PODS: Applications
// of Sketching and Pathways to Impact" (Cormode, PODS 2023) — set
// membership (Bloom), approximate counting (Morris, Nelson–Yu),
// distinct counting (Flajolet–Martin, LogLog, HyperLogLog, HLL++, KMV),
// frequency estimation and heavy hitters (Count-Min, Count Sketch,
// Misra–Gries, SpaceSaving, Boyer–Moore), second-moment estimation
// (AMS), quantiles (MRL, GK, q-digest, KLL, t-digest), sampling
// (reservoir, weighted, L0), dimensionality reduction (dense and sparse
// JL), similarity search (MinHash/LSH, SimHash, p-stable), graph
// connectivity sketches (AGM), privacy-preserving collection (RAPPOR,
// private count-mean, DP Count-Min), adversarially robust wrappers, and
// sketched gradient compression (FetchSGD).
//
// Every sketch follows the same conventions:
//
//   - streaming updates via Add*/Update, one pass, small space;
//   - Merge where the literature supports it (returning
//     ErrIncompatible on shape/seed mismatches), so distributed
//     aggregation is lossless per the Mergeable Summaries model;
//   - MarshalBinary/UnmarshalBinary with a tagged, versioned envelope;
//   - deterministic behaviour under an explicit seed.
//
// The types here are aliases of the implementation packages under
// internal/, so the facade adds no indirection cost.
package sketch

import (
	"fmt"

	"repro/internal/ams"
	"repro/internal/bloom"
	"repro/internal/cardinality"
	"repro/internal/concurrent"
	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/fetchsgd"
	"repro/internal/frequency"
	"repro/internal/graphsketch"
	"repro/internal/jl"
	"repro/internal/kernel"
	"repro/internal/lsh"
	"repro/internal/matrix"
	"repro/internal/privacy"
	"repro/internal/quantile"
	"repro/internal/registry"
	"repro/internal/robust"
	"repro/internal/sample"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/window"
)

// Shared error values and contract types.
var (
	// ErrIncompatible is returned by every Merge when shapes or seeds
	// differ.
	ErrIncompatible = core.ErrIncompatible
	// ErrCorrupt is returned by every UnmarshalBinary on bad input.
	ErrCorrupt = core.ErrCorrupt
)

// Spec is the (ε, δ) accuracy contract used by spec-driven
// constructors.
type Spec = core.Spec

// Updater is the minimal streaming interface every sketch satisfies.
type Updater = core.Updater

// Set membership (Bloom 1970).
type (
	// BloomFilter is the classic Bloom filter.
	BloomFilter = bloom.Filter
	// CountingBloomFilter supports deletions via small counters.
	CountingBloomFilter = bloom.CountingFilter
	// BlockedBloomFilter confines each item's k bits to one 512-bit
	// cache-line block (Putze–Sanders–Singler): one memory access per
	// Add/Contains at a slightly higher false-positive rate.
	BlockedBloomFilter = bloom.BlockedFilter
)

// NewBloom creates a Bloom filter with m bits and k hash functions.
func NewBloom(m uint64, k int, seed uint64) *BloomFilter { return bloom.New(m, k, seed) }

// NewBloomWithEstimates sizes a Bloom filter for n items at false
// positive rate p.
func NewBloomWithEstimates(n uint64, p float64, seed uint64) *BloomFilter {
	return bloom.NewWithEstimates(n, p, seed)
}

// NewCountingBloom creates a counting Bloom filter.
func NewCountingBloom(m uint64, k int, seed uint64) *CountingBloomFilter {
	return bloom.NewCounting(m, k, seed)
}

// NewBlockedBloom creates a cache-line-blocked Bloom filter with at
// least m bits (rounded up to whole 512-bit blocks) and k probes.
func NewBlockedBloom(m uint64, k int, seed uint64) *BlockedBloomFilter {
	return bloom.NewBlocked(m, k, seed)
}

// NewBlockedBloomWithEstimates sizes a blocked Bloom filter for n items
// at target false-positive rate p (realized FPR lands slightly above p
// — the blocking penalty; see bloom.TheoreticalBlockedFPR).
func NewBlockedBloomWithEstimates(n uint64, p float64, seed uint64) *BlockedBloomFilter {
	return bloom.NewBlockedWithEstimates(n, p, seed)
}

// Approximate counting (Morris 1977; Nelson–Yu PODS 2022).
type (
	// MorrisCounter counts n events in O(log log n) bits.
	MorrisCounter = counter.Morris
	// NelsonYuCounter adds an (ε, δ) contract via median amplification.
	NelsonYuCounter = counter.NelsonYu
)

// NewMorris creates a base-2 Morris counter.
func NewMorris(seed uint64) *MorrisCounter { return counter.NewMorris(seed) }

// NewMorrisBase creates a Morris counter with accuracy base b > 1.
func NewMorrisBase(base float64, seed uint64) *MorrisCounter {
	return counter.NewMorrisBase(base, seed)
}

// NewNelsonYu creates an (ε, δ) approximate counter.
func NewNelsonYu(eps, delta float64, seed uint64) *NelsonYuCounter {
	return counter.NewNelsonYu(eps, delta, seed)
}

// Distinct counting (F0): the FM → LogLog → HLL lineage plus KMV.
type (
	// FMSketch is Flajolet–Martin probabilistic counting (PCSA, 1983).
	FMSketch = cardinality.FM
	// LogLogSketch is the Durand–Flajolet LogLog counter (2003).
	LogLogSketch = cardinality.LogLog
	// HLLSketch is HyperLogLog (2007) with 6-bit packed registers.
	HLLSketch = cardinality.HLL
	// HLLPPSketch is HyperLogLog++ with a sparse small-cardinality mode.
	HLLPPSketch = cardinality.HLLPP
	// KMVSketch is the bottom-k distinct counter with set operations.
	KMVSketch = cardinality.KMV
	// ThetaSketch is the DataSketches-style adaptive-threshold sketch
	// with full set algebra (Union/Intersect/AnotB return sketches).
	ThetaSketch = cardinality.Theta
)

// NewFM creates a PCSA sketch with m bitmaps (power of two).
func NewFM(m int, seed uint64) *FMSketch { return cardinality.NewFM(m, seed) }

// NewLogLog creates a LogLog sketch with 2^p registers.
func NewLogLog(p uint8, seed uint64) *LogLogSketch { return cardinality.NewLogLog(p, seed) }

// NewHLL creates a HyperLogLog sketch with 2^p registers.
func NewHLL(p uint8, seed uint64) *HLLSketch { return cardinality.NewHLL(p, seed) }

// NewHLLPP creates an HLL++ sketch with sparse low-cardinality mode.
func NewHLLPP(p uint8, seed uint64) *HLLPPSketch { return cardinality.NewHLLPP(p, seed) }

// NewKMV creates a bottom-k sketch supporting intersections and
// Jaccard estimates.
func NewKMV(k int, seed uint64) *KMVSketch { return cardinality.NewKMV(k, seed) }

// NewTheta creates a theta sketch with nominal capacity k.
func NewTheta(k int, seed uint64) *ThetaSketch { return cardinality.NewTheta(k, seed) }

// Frequency estimation and heavy hitters.
type (
	// CountMin is the Cormode–Muthukrishnan Count-Min sketch (L1 bound).
	CountMin = frequency.CountMin
	// CountSketch is the Charikar–Chen–Farach-Colton sketch (L2 bound).
	CountSketch = frequency.CountSketch
	// MisraGries is the deterministic k-counter frequent-items summary.
	MisraGries = frequency.MisraGries
	// SpaceSaving is the Metwally et al. top-k counter summary.
	SpaceSaving = frequency.SpaceSaving
	// Majority is Boyer–Moore majority voting.
	Majority = frequency.Majority
	// DyadicCountMin answers range counts and quantiles over integers.
	DyadicCountMin = frequency.DyadicCountMin
	// HeavyHitter is one reported item with its estimated count.
	HeavyHitter = frequency.Entry
	// SFSketch is the two-stage Slim-Fat sketch: fat stage absorbs
	// updates, slim stage ships on the wire.
	SFSketch = frequency.SFSketch
)

// NewCountMin creates a width×depth Count-Min sketch.
func NewCountMin(width, depth int, seed uint64) *CountMin {
	return frequency.NewCountMin(width, depth, seed)
}

// NewCountMinWithSpec sizes a Count-Min sketch from an (ε, δ) contract.
func NewCountMinWithSpec(spec Spec, seed uint64) (*CountMin, error) {
	return frequency.NewCountMinWithSpec(spec, seed)
}

// NewCountMinFused creates a Count-Min sketch in the fused cache-line
// layout: the depth counters an item touches live in depth adjacent
// cache lines instead of depth distant rows (width rounds up to a
// multiple of 8; depth ≤ 21). Fused and standard sketches address
// different cells and do not merge with each other.
func NewCountMinFused(width, depth int, seed uint64) *CountMin {
	return frequency.NewCountMinFused(width, depth, seed)
}

// NewCountSketchFused creates a Count Sketch in the fused cache-line
// layout (width rounds up to a multiple of 8; depth rounds odd, ≤ 21).
func NewCountSketchFused(width, depth int, seed uint64) *CountSketch {
	return frequency.NewCountSketchFused(width, depth, seed)
}

// NewCountSketch creates a width×depth Count Sketch (depth ≤ 63; even
// depths are raised by one so the median is unambiguous).
func NewCountSketch(width, depth int, seed uint64) *CountSketch {
	return frequency.NewCountSketch(width, depth, seed)
}

// NewSFSketch creates a two-stage SF-sketch: a slimWidth×slimDepth
// slim stage (the wire representation) backed by a fatWidth×fatDepth
// fat stage that absorbs every update. MarshalSlim ships the slim
// stage alone — near-fat accuracy at a fraction of the bytes.
func NewSFSketch(slimWidth, slimDepth, fatWidth, fatDepth int, seed uint64) *SFSketch {
	return frequency.NewSFSketch(slimWidth, slimDepth, fatWidth, fatDepth, seed)
}

// NewMisraGries creates a k-counter Misra–Gries summary.
func NewMisraGries(k int) *MisraGries { return frequency.NewMisraGries(k) }

// NewSpaceSaving creates a k-counter SpaceSaving summary.
func NewSpaceSaving(k int) *SpaceSaving { return frequency.NewSpaceSaving(k) }

// NewMajority creates a Boyer–Moore majority voter.
func NewMajority() *Majority { return frequency.NewMajority() }

// NewDyadicCountMin creates a dyadic Count-Min over [0, 2^levels).
func NewDyadicCountMin(levels, width, depth int, seed uint64) *DyadicCountMin {
	return frequency.NewDyadicCountMin(levels, width, depth, seed)
}

// Second frequency moment (AMS 1996).
type AMSSketch = ams.Sketch

// NewAMS creates an AMS tug-of-war sketch with median groups of
// averaged estimators.
func NewAMS(groups, perGroup int, seed uint64) *AMSSketch { return ams.New(groups, perGroup, seed) }

// NewAMSWithSpec sizes an AMS sketch from an (ε, δ) contract.
func NewAMSWithSpec(spec Spec, seed uint64) (*AMSSketch, error) {
	return ams.NewWithSpec(spec, seed)
}

// Quantiles: the MRL → GK → q-digest → KLL lineage plus t-digest.
type (
	// GKSummary is the Greenwald–Khanna deterministic summary.
	GKSummary = quantile.GK
	// KLLSketch is the near-optimal Karnin–Lang–Liberty sketch.
	KLLSketch = quantile.KLL
	// QDigest is the mergeable integer-domain q-digest.
	QDigest = quantile.QDigest
	// TDigest is Dunning's tail-accurate centroid digest.
	TDigest = quantile.TDigest
	// MRLSummary is the Manku–Rajagopalan–Lindsay buffer algorithm.
	MRLSummary = quantile.MRL
	// REQSketch is the relative-error quantile sketch (PODS 2021).
	REQSketch = quantile.REQ
	// ExactQuantiles is the Θ(n) ground-truth baseline.
	ExactQuantiles = quantile.Exact
)

// NewGK creates a GK summary with rank error eps.
func NewGK(eps float64) *GKSummary { return quantile.NewGK(eps) }

// NewKLL creates a KLL sketch with top-compactor capacity k.
func NewKLL(k int, seed uint64) *KLLSketch { return quantile.NewKLL(k, seed) }

// NewQDigest creates a q-digest over [0, 2^logU) with compression k.
func NewQDigest(logU uint8, k uint64) *QDigest { return quantile.NewQDigest(logU, k) }

// NewTDigest creates a t-digest with the given compression.
func NewTDigest(compression float64) *TDigest { return quantile.NewTDigest(compression) }

// NewMRL creates an MRL summary with b buffers of capacity k.
func NewMRL(b, k int, seed uint64) *MRLSummary { return quantile.NewMRL(b, k, seed) }

// NewREQ creates a relative-error quantile sketch favoring the upper
// tail, with section size k.
func NewREQ(k int, seed uint64) *REQSketch { return quantile.NewREQ(k, seed) }

// NewExactQuantiles creates the exact baseline.
func NewExactQuantiles() *ExactQuantiles { return quantile.NewExact() }

// Sampling.
type (
	// Reservoir is uniform reservoir sampling (Algorithm R).
	Reservoir = sample.Reservoir
	// WeightedReservoir is Efraimidis–Spirakis weighted sampling.
	WeightedReservoir = sample.WeightedReservoir
	// L0Sampler samples the support of a turnstile stream.
	L0Sampler = sample.L0Sampler
	// LpSampler samples indexes with probability proportional to
	// |f(i)|^p (PODS 2011 Lp samplers).
	LpSampler = sample.LpSampler
	// SparseRecovery recovers s-sparse turnstile vectors exactly.
	SparseRecovery = sample.SparseRecovery
)

// NewReservoir creates a k-item uniform reservoir.
func NewReservoir(k int, seed uint64) *Reservoir { return sample.NewReservoir(k, seed) }

// NewWeightedReservoir creates a k-item weighted reservoir.
func NewWeightedReservoir(k int, seed uint64) *WeightedReservoir {
	return sample.NewWeightedReservoir(k, seed)
}

// NewL0Sampler creates an L0 sampler with per-level sparsity s.
func NewL0Sampler(s int, seed uint64) *L0Sampler { return sample.NewL0Sampler(s, seed) }

// NewSparseRecovery creates an s-sparse recovery structure.
func NewSparseRecovery(s int, seed uint64) *SparseRecovery {
	return sample.NewSparseRecovery(s, seed)
}

// NewLpSampler creates a precision sampler for exponent p with a
// width×depth scaled Count-Sketch.
func NewLpSampler(p float64, width, depth int, seed uint64) *LpSampler {
	return sample.NewLpSampler(p, width, depth, seed)
}

// Dimensionality reduction (Johnson–Lindenstrauss).
type (
	// JLTransform is the common interface of all JL projections.
	JLTransform = jl.Transform
	// DenseJL is a dense Gaussian or Rademacher projection.
	DenseJL = jl.Dense
	// SparseJL is the Kane–Nelson sparse transform.
	SparseJL = jl.Sparse
)

// NewGaussianJL creates a dense Gaussian projection d→k.
func NewGaussianJL(d, k int, seed uint64) *DenseJL { return jl.NewGaussian(d, k, seed) }

// NewRademacherJL creates a dense ±1 projection d→k.
func NewRademacherJL(d, k int, seed uint64) *DenseJL { return jl.NewRademacher(d, k, seed) }

// NewSparseJL creates a sparse projection with s nonzeros per column.
func NewSparseJL(d, k, s int, seed uint64) *SparseJL { return jl.NewSparse(d, k, s, seed) }

// JLTargetDim returns the output dimension preserving pairwise
// distances among n points within (1±eps).
func JLTargetDim(n int, eps float64) int { return jl.TargetDim(n, eps) }

// Similarity search (LSH).
type (
	// MinHash is a Jaccard-similarity signature.
	MinHash = lsh.MinHash
	// LSHIndex is a banded MinHash index.
	LSHIndex = lsh.Index
	// SimHash is random-hyperplane cosine LSH.
	SimHash = lsh.SimHash
	// EuclideanLSH is p-stable LSH for Euclidean distance.
	EuclideanLSH = lsh.EuclideanLSH
)

// NewMinHash creates a k-coordinate MinHash signature.
func NewMinHash(k int, seed uint64) *MinHash { return lsh.NewMinHash(k, seed) }

// NewLSHIndex creates a banded index (signature length = bands·rows).
func NewLSHIndex(bands, rows int) *LSHIndex { return lsh.NewIndex(bands, rows) }

// NewSimHash creates a SimHash over d-dimensional vectors.
func NewSimHash(d, bits int, seed uint64) *SimHash { return lsh.NewSimHash(d, bits, seed) }

// NewEuclideanLSH creates p-stable LSH with bucket width w.
func NewEuclideanLSH(d, k int, w float64, seed uint64) *EuclideanLSH {
	return lsh.NewEuclideanLSH(d, k, w, seed)
}

// Graph sketching (Ahn–Guha–McGregor).
type GraphSketch = graphsketch.Sketch

// NewGraphSketch creates a connectivity sketch for n vertices.
func NewGraphSketch(n, rounds int, seed uint64) *GraphSketch {
	return graphsketch.New(n, rounds, seed)
}

// Privacy-preserving collection.
type (
	// RandomizedResponse is the Warner 1965 bit mechanism.
	RandomizedResponse = privacy.RandomizedResponse
	// RAPPOR is the Bloom-filter + randomized-response encoder/decoder.
	RAPPOR = privacy.RAPPOR
	// PrivateCMS is the Apple-style private count-mean sketch.
	PrivateCMS = privacy.PrivateCMS
	// DPCountMin is a Count-Min sketch released with Laplace noise.
	DPCountMin = privacy.DPCountMin
	// LaplaceMechanism adds ε-DP Laplace noise to numeric releases.
	LaplaceMechanism = privacy.LaplaceMechanism
	// GaussianMechanism adds (ε, δ)-DP Gaussian noise.
	GaussianMechanism = privacy.GaussianMechanism
)

// NewRandomizedResponse creates an ε-DP bit mechanism.
func NewRandomizedResponse(eps float64, seed uint64) *RandomizedResponse {
	return privacy.NewRandomizedResponse(eps, seed)
}

// NewRAPPOR creates a RAPPOR configuration (m bits, k hashes, budget ε).
func NewRAPPOR(m, k int, eps float64, seed uint64) *RAPPOR {
	return privacy.NewRAPPOR(m, k, eps, seed)
}

// NewPrivateCMS creates an Apple-style private count-mean sketch
// aggregator.
func NewPrivateCMS(width, depth int, eps float64, seed uint64) *PrivateCMS {
	return privacy.NewPrivateCMS(width, depth, eps, seed)
}

// NewDPCountMin creates a DP Count-Min sketch (release-once semantics).
func NewDPCountMin(width, depth int, eps float64, seed uint64) *DPCountMin {
	return privacy.NewDPCountMin(width, depth, eps, seed)
}

// NewLaplaceMechanism creates an ε-DP Laplace mechanism.
func NewLaplaceMechanism(eps, sensitivity float64, seed uint64) *LaplaceMechanism {
	return privacy.NewLaplaceMechanism(eps, sensitivity, seed)
}

// NewGaussianMechanism creates an (ε, δ)-DP Gaussian mechanism.
func NewGaussianMechanism(eps, delta, sensitivity float64, seed uint64) *GaussianMechanism {
	return privacy.NewGaussianMechanism(eps, delta, sensitivity, seed)
}

// Adversarial robustness (BJWY sketch switching plus the composable
// defense wrappers the red-team harness in internal/robust/attack
// measures).
type (
	// RobustF2 is a robust second-moment estimator.
	RobustF2 = robust.F2
	// RobustDistinct is a robust distinct counter (HLL copies under
	// sketch switching).
	RobustDistinct = robust.Distinct
	// RobustEstimator is the streaming distinct-count surface the
	// attack harness targets and the defense wrappers compose over.
	RobustEstimator = robust.Estimator
	// SwitchingEstimator rotates through lambda independent copies,
	// re-basing whenever the estimate drifts by eps.
	SwitchingEstimator = robust.Switching
	// NoisyEstimator releases multiplicatively rounded estimates from
	// a deterministic secret-phase grid.
	NoisyEstimator = robust.Noisy
	// SubsampledEstimator answers from a Bernoulli sample of the
	// stream, scaling estimates by 1/q.
	SubsampledEstimator = robust.Subsampled
)

// NewRobustDistinct creates a robust distinct counter with lambda HLL
// copies of precision p.
func NewRobustDistinct(eps float64, lambda int, p uint8, seed uint64) *RobustDistinct {
	return robust.NewDistinct(eps, lambda, p, seed)
}

// NewRobustF2 creates an adversarially robust F2 estimator with lambda
// independent copies.
func NewRobustF2(eps float64, lambda, groups, perGroup int, seed uint64) *RobustF2 {
	return robust.NewF2(eps, lambda, groups, perGroup, seed)
}

// RobustLambdaFor sizes the copy count for a stream with F2 up to
// maxF2.
func RobustLambdaFor(eps, maxF2 float64) int { return robust.LambdaFor(eps, maxF2) }

// NewDefendedDistinct creates a robust distinct counter with every
// in-sketch defense engaged: lambda switching HLL copies of precision
// p, rho-rounded noisy release, and Bernoulli-q subsampled ingest
// (rho = 0 and q = 1 disable those layers).
func NewDefendedDistinct(eps float64, lambda int, p uint8, seed uint64, rho, q float64) *RobustDistinct {
	return robust.NewDefendedDistinct(eps, lambda, p, seed, rho, q)
}

// NewSwitchingHLL wraps lambda HLL copies of precision p under sketch
// switching with drift threshold eps.
func NewSwitchingHLL(eps float64, lambda int, p uint8, seed uint64) *SwitchingEstimator {
	return robust.NewSwitchingHLL(eps, lambda, p, seed)
}

// NewSwitchingKMV wraps lambda KMV copies retaining k minima under
// sketch switching with drift threshold eps.
func NewSwitchingKMV(eps float64, lambda, k int, seed uint64) *SwitchingEstimator {
	return robust.NewSwitchingKMV(eps, lambda, k, seed)
}

// NewNoisyEstimator wraps any estimator in multiplicative rho-rounded
// release on a secret-phase grid.
func NewNoisyEstimator(inner RobustEstimator, rho float64, seed uint64) *NoisyEstimator {
	return robust.NewNoisy(inner, rho, seed)
}

// NewSubsampledEstimator wraps any estimator in Bernoulli-q subsampled
// answering: each item is hashed into or out of the sample, and
// estimates scale by 1/q.
func NewSubsampledEstimator(inner RobustEstimator, q float64, seed uint64) *SubsampledEstimator {
	return robust.NewSubsampled(inner, q, seed)
}

// Gradient compression (FetchSGD).
type GradSketch = fetchsgd.GradSketch

// NewGradSketch creates a Count-Sketch gradient compressor.
func NewGradSketch(rows, cols int, seed uint64) *GradSketch {
	return fetchsgd.NewGradSketch(rows, cols, seed)
}

// Concurrency (DataSketches-style).
type (
	// ShardedHLL is a concurrent HLL with per-shard writers.
	ShardedHLL = concurrent.ShardedHLL
	// AtomicCountMin is a lock-free Count-Min sketch.
	AtomicCountMin = concurrent.AtomicCountMin
	// AtomicBlockedBloom is a lock-free cache-line-blocked Bloom filter.
	AtomicBlockedBloom = concurrent.AtomicBlockedBloom
)

// NewShardedHLL creates a concurrent HLL with the given shard count.
func NewShardedHLL(shards int, p uint8, seed uint64) *ShardedHLL {
	return concurrent.NewShardedHLL(shards, p, seed)
}

// NewAtomicCountMin creates a lock-free Count-Min sketch.
func NewAtomicCountMin(width, depth int, seed uint64) *AtomicCountMin {
	return concurrent.NewAtomicCountMin(width, depth, seed)
}

// NewAtomicBlockedBloom creates a lock-free blocked Bloom filter that
// addresses the same bits as NewBlockedBloom with equal shape and seed.
func NewAtomicBlockedBloom(m uint64, k int, seed uint64) *AtomicBlockedBloom {
	return concurrent.NewAtomicBlockedBloom(m, k, seed)
}

// Serving (sketchd): the HTTP layer over the library — a namespace of
// named sketches with batched ingest, queries, mergeable-summary
// exchange, and /debug/statsz counters. cmd/sketchd is the daemon;
// experiment E25 measures its ingest throughput scaling.
type (
	// SketchServer is the sketchd HTTP server; mount Handler() on any
	// net/http server.
	SketchServer = server.Server
	// ServerCreateRequest is the JSON body of sketch creation.
	ServerCreateRequest = server.CreateRequest
	// ServerEntry is one named sketch behind the registry.
	ServerEntry = server.Entry
	// ServerStatsz is the /debug/statsz response document.
	ServerStatsz = server.Statsz
	// ServerClient is the Go client for sketchd.
	ServerClient = client.Client
)

// NewSketchServer creates an empty sketchd server.
func NewSketchServer() *SketchServer { return server.New() }

// NewServerClient creates a sketchd client for a base URL like
// "http://127.0.0.1:7600".
func NewServerClient(base string) *ServerClient { return client.New(base) }

// NewServerEntry builds a server registry entry from creation
// parameters (exposed for embedding sketchd-style registries).
func NewServerEntry(req ServerCreateRequest) (*ServerEntry, error) { return server.NewEntry(req) }

// The self-describing type system: every sketch family registers a
// descriptor (wire tag, name, parameter schema, constructor, decoder)
// in internal/registry, and these entry points make any family
// constructible by name and any serialized envelope decodable without
// knowing its concrete type.

// TypeParam is one parameter of a sketch type's schema.
type TypeParam struct {
	Name    string
	Doc     string
	Default float64
	Min     float64
	Max     float64
	Float   bool // false: integer-valued
}

// TypeInfo describes one registered sketch family.
type TypeInfo struct {
	Name      string // canonical name accepted by New ("hll", "kll", …)
	Family    string // grouping ("cardinality", "quantile", …)
	Doc       string
	Tag       byte   // GSK1 envelope tag
	Input     string // streaming ingest line format ("" if none)
	Mergeable bool
	Servable  bool // creatable in sketchd
	Params    []TypeParam
}

// Types lists every registered sketch family sorted by name.
func Types() []TypeInfo {
	ds := registry.All()
	out := make([]TypeInfo, len(ds))
	for i, d := range ds {
		params := make([]TypeParam, len(d.Params))
		for j, p := range d.Params {
			params[j] = TypeParam{Name: p.Name, Doc: p.Doc, Default: p.Def, Min: p.Min, Max: p.Max, Float: p.Float}
		}
		input := ""
		if d.Input != 0 {
			input = d.Input.String()
		}
		out[i] = TypeInfo{
			Name:      d.Name,
			Family:    d.Family,
			Doc:       d.Doc,
			Tag:       d.Tag,
			Input:     input,
			Mergeable: d.Mergeable(),
			Servable:  d.Servable(),
			Params:    params,
		}
	}
	return out
}

// New constructs a sketch by registry name with named parameters
// (absent entries take the descriptor defaults — see Types). The
// result is the family's concrete type, e.g. *HLL for "hll"; callers
// typically use it through Updater / Merge / MarshalBinary.
func New(typeName string, seed uint64, params map[string]float64) (any, error) {
	d, ok := registry.Lookup(typeName)
	if !ok {
		return nil, fmt.Errorf("%w: %q", registry.ErrUnknownType, typeName)
	}
	p, err := d.Validate(seed, params)
	if err != nil {
		return nil, err
	}
	return d.New(p)
}

// Decode deserializes any sketch envelope produced by a MarshalBinary
// in this module, dispatching on the self-describing GSK1 tag. The
// result is the family's concrete type (e.g. *KLL, *BloomFilter);
// unknown or retired tags and malformed payloads return ErrCorrupt.
func Decode(data []byte) (any, error) {
	inst, _, err := registry.Decode(data)
	return inst, err
}

// DecodeInfo is like Decode but also reports the decoded family.
func DecodeInfo(data []byte) (any, string, error) {
	inst, d, err := registry.Decode(data)
	if err != nil {
		return nil, "", err
	}
	return inst, d.Name, nil
}

// Kernel approximation (TensorSketch, cite [40]).
type TensorSketch = kernel.TensorSketch

// NewTensorSketch creates a polynomial-kernel feature map of the given
// degree with output dimension k (a power of two).
func NewTensorSketch(d, k, degree int, seed uint64) *TensorSketch {
	return kernel.NewTensorSketch(d, k, degree, seed)
}

// Matrix sketching (cite [48]).
type (
	// FrequentDirections is Liberty's deterministic matrix sketch.
	FrequentDirections = matrix.FD
	// AMM approximates AᵀB through a shared Count-Sketch projection.
	AMM = matrix.AMM
)

// NewFrequentDirections creates an ℓ-direction sketch over d columns.
func NewFrequentDirections(l, d int, seed uint64) *FrequentDirections {
	return matrix.NewFD(l, d, seed)
}

// NewAMM creates an approximate matrix multiplier compressing the
// shared row dimension to k.
func NewAMM(k, dA, dB int, seed uint64) *AMM { return matrix.NewAMM(k, dA, dB, seed) }

// Sliding windows (exponential histograms).
type (
	// EH counts events over a sliding window with relative error 1/k.
	EH = window.EH
	// WindowedHLL tracks sliding-window distinct counts via rotating
	// HLL panes.
	WindowedHLL = window.WindowedHLL
	// WindowedTopK tracks sliding-window heavy hitters via rotating
	// SpaceSaving panes.
	WindowedTopK = window.WindowedTopK
)

// NewEH creates an exponential histogram over a window of W ticks.
func NewEH(windowTicks uint64, k int) *EH { return window.NewEH(windowTicks, k) }

// NewWindowedHLL creates a sliding-window distinct counter.
func NewWindowedHLL(windowTicks uint64, panes int, precision uint8, seed uint64) *WindowedHLL {
	return window.NewWindowedHLL(windowTicks, panes, precision, seed)
}

// NewWindowedTopK creates a sliding-window heavy-hitter tracker.
func NewWindowedTopK(windowTicks uint64, panes, k int) *WindowedTopK {
	return window.NewWindowedTopK(windowTicks, panes, k)
}
