#!/bin/sh
# Cluster smoke test: stand up three sketchd shards (one durable) plus
# a coordinator as real processes, drive ingest through the
# coordinator — in the default namespace AND through two tenant
# namespaces — then exercise the partial-failure contract end to end:
# kill -9 a shard, assert global reads fail 503 *naming* the dead
# shard, assert ?allow_partial=true serves a degraded estimate labeled
# with both the shard and the tenant, restart the shard from its WAL,
# and assert per-tenant state comes back exactly. CI runs this on
# every push (cluster-smoke job) and archives the transcript.
set -eu
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
PIDS=""
cleanup() {
	for p in $PIDS; do
		kill "$p" 2>/dev/null || true
	done
	# Reap before rm: the durable shard writes a final snapshot on
	# SIGTERM, and removing the tree under it races that write.
	for p in $PIDS; do
		wait "$p" 2>/dev/null || true
	done
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

COORD=127.0.0.1:7700
S1=127.0.0.1:7701
S2=127.0.0.1:7702
S3=127.0.0.1:7703

wait_ready() {
	i=0
	while ! curl -fsS "http://$1/v1/status" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "FAIL: timeout waiting for $1" >&2
			exit 1
		fi
		sleep 0.1
	done
}

echo "== build"
go build -o "$WORK/sketchd" ./cmd/sketchd

echo "== start 3 shards (shard 3 durable) + coordinator"
"$WORK/sketchd" -addr "$S1" &
PIDS="$PIDS $!"
"$WORK/sketchd" -addr "$S2" &
PIDS="$PIDS $!"
# fsync-interval 0 = fsync every batch: the kill -9 below must land
# outside any group-commit loss window for the exact-recovery check.
"$WORK/sketchd" -addr "$S3" -data-dir "$WORK/shard3" -fsync-interval 0 &
S3_PID=$!
PIDS="$PIDS $S3_PID"
"$WORK/sketchd" -coordinator -shards "$S1,$S2,$S3" -addr "$COORD" &
PIDS="$PIDS $!"
for h in "$S1" "$S2" "$S3" "$COORD"; do wait_ready "$h"; done

echo "== create + ingest 50000 distinct items through the coordinator"
curl -fsS -X POST "http://$COORD/v1/sketch/users" -d '{"type":"hll","p":12}' >/dev/null
seq 1 50000 | sed 's/^/user-/' |
	curl -fsS -X POST --data-binary @- "http://$COORD/v1/sketch/users/add" >/dev/null

EST=$(curl -fsS "http://$COORD/v1/sketch/users/query" |
	sed 's/.*"estimate":\([0-9.e+]*\).*/\1/')
echo "global estimate: $EST (true 50000)"
awk -v e="$EST" 'BEGIN { d = e / 50000; if (d < 0.95 || d > 1.05) exit 1 }' ||
	{ echo "FAIL: estimate $EST outside 5% of 50000"; exit 1; }

HEALTHY=$(curl -fsS "http://$COORD/v1/cluster/status" | grep -o '"healthy":[0-9]*')
echo "cluster status: $HEALTHY"
[ "$HEALTHY" = '"healthy":3' ] || { echo "FAIL: want 3 healthy shards"; exit 1; }

echo "== two tenants through the coordinator: same sketch name, disjoint state"
curl -fsS -X POST "http://$COORD/v1/t/acme/sketch/users" -d '{"type":"hll","p":12}' >/dev/null
curl -fsS -X POST "http://$COORD/v1/t/globex/sketch/users" -d '{"type":"hll","p":12}' >/dev/null
seq 1 20000 | sed 's/^/acme-/' |
	curl -fsS -X POST --data-binary @- "http://$COORD/v1/t/acme/sketch/users/add" >/dev/null
seq 1 5000 | sed 's/^/globex-/' |
	curl -fsS -X POST --data-binary @- "http://$COORD/v1/t/globex/sketch/users/add" >/dev/null

ACME=$(curl -fsS "http://$COORD/v1/t/acme/sketch/users/query" |
	sed 's/.*"estimate":\([0-9.e+]*\).*/\1/')
GLOBEX=$(curl -fsS "http://$COORD/v1/t/globex/sketch/users/query" |
	sed 's/.*"estimate":\([0-9.e+]*\).*/\1/')
echo "acme estimate: $ACME (true 20000), globex estimate: $GLOBEX (true 5000)"
awk -v e="$ACME" 'BEGIN { d = e / 20000; if (d < 0.95 || d > 1.05) exit 1 }' ||
	{ echo "FAIL: acme estimate $ACME outside 5% of 20000"; exit 1; }
awk -v e="$GLOBEX" 'BEGIN { d = e / 5000; if (d < 0.95 || d > 1.05) exit 1 }' ||
	{ echo "FAIL: globex estimate $GLOBEX outside 5% of 5000 (tenant state leaked?)"; exit 1; }

# Shard 3's own estimates (default + acme namespaces), for the
# exact-recovery check: a partial ingest below only touches the
# surviving shards, so shard 3 must come back from its WAL with
# precisely this state.
S3EST=$(curl -fsS "http://$S3/v1/sketch/users/query" |
	sed 's/.*"estimate":\([0-9.e+]*\).*/\1/')
S3ACME=$(curl -fsS "http://$S3/v1/t/acme/sketch/users/query" |
	sed 's/.*"estimate":\([0-9.e+]*\).*/\1/')
echo "shard 3 estimates before kill: default $S3EST, acme $S3ACME"

echo "== kill -9 shard 3, assert degraded reads name it"
kill -9 "$S3_PID"
wait "$S3_PID" 2>/dev/null || true

CODE=$(curl -s -o "$WORK/body" -w '%{http_code}' "http://$COORD/v1/sketch/users/query")
echo "strict query after kill: HTTP $CODE $(cat "$WORK/body")"
[ "$CODE" = 503 ] || { echo "FAIL: want 503, got $CODE"; exit 1; }
grep -q "$S3" "$WORK/body" || { echo "FAIL: 503 body does not name dead shard $S3"; exit 1; }

CODE=$(curl -s -o "$WORK/body" -w '%{http_code}' "http://$COORD/v1/sketch/users/query?allow_partial=true")
echo "partial query after kill: HTTP $CODE $(cat "$WORK/body")"
[ "$CODE" = 200 ] || { echo "FAIL: allow_partial want 200, got $CODE"; exit 1; }
grep -q '"partial":true' "$WORK/body" || { echo "FAIL: degraded read not labeled partial"; exit 1; }
grep -q "$S3" "$WORK/body" || { echo "FAIL: partial body does not name dead shard"; exit 1; }

# Tenant-scoped degradation carries the tenant label alongside the
# dead shard, so a multi-tenant operator can attribute the failure.
CODE=$(curl -s -o "$WORK/body" -w '%{http_code}' "http://$COORD/v1/t/acme/sketch/users/query")
echo "strict acme query after kill: HTTP $CODE $(cat "$WORK/body")"
[ "$CODE" = 503 ] || { echo "FAIL: tenant strict query want 503, got $CODE"; exit 1; }
grep -q '"tenant":"acme"' "$WORK/body" || { echo "FAIL: tenant 503 not labeled with tenant"; exit 1; }
grep -q "$S3" "$WORK/body" || { echo "FAIL: tenant 503 does not name dead shard"; exit 1; }

CODE=$(curl -s -o "$WORK/body" -w '%{http_code}' "http://$COORD/v1/t/acme/sketch/users/query?allow_partial=true")
echo "partial acme query after kill: HTTP $CODE $(cat "$WORK/body")"
[ "$CODE" = 200 ] || { echo "FAIL: tenant allow_partial want 200, got $CODE"; exit 1; }
grep -q '"partial":true' "$WORK/body" || { echo "FAIL: tenant degraded read not labeled partial"; exit 1; }
grep -q '"tenant":"acme"' "$WORK/body" || { echo "FAIL: tenant degraded read not labeled with tenant"; exit 1; }

# A 200-key batch is certain to route at least one key to the dead
# shard's arc of the ring, so the fan-out must fail loudly.
CODE=$(seq 1 200 | sed 's/^/probe-/' | curl -s -o "$WORK/body" -w '%{http_code}' -X POST --data-binary @- "http://$COORD/v1/sketch/users/add" || true)
echo "ingest after kill: HTTP $CODE"
[ "$CODE" = 503 ] || { echo "FAIL: ingest with dead shard want 503, got $CODE"; exit 1; }

echo "== restart shard 3 from its WAL, assert exact recovery"
"$WORK/sketchd" -addr "$S3" -data-dir "$WORK/shard3" -fsync-interval 0 &
PIDS="$PIDS $!"
wait_ready "$S3"

S3EST2=$(curl -fsS "http://$S3/v1/sketch/users/query" |
	sed 's/.*"estimate":\([0-9.e+]*\).*/\1/')
S3ACME2=$(curl -fsS "http://$S3/v1/t/acme/sketch/users/query" |
	sed 's/.*"estimate":\([0-9.e+]*\).*/\1/')
echo "shard 3 estimates after recovery: default $S3EST2, acme $S3ACME2"
[ "$S3EST2" = "$S3EST" ] || { echo "FAIL: shard 3 state changed across crash+recovery: $S3EST -> $S3EST2"; exit 1; }
[ "$S3ACME2" = "$S3ACME" ] || { echo "FAIL: shard 3 acme tenant changed across crash+recovery: $S3ACME -> $S3ACME2"; exit 1; }

# Retrying the probe batch now succeeds everywhere (HLL ingest is
# idempotent on the shards that already absorbed their slice), and the
# cluster is whole again.
seq 1 200 | sed 's/^/probe-/' |
	curl -fsS -X POST --data-binary @- "http://$COORD/v1/sketch/users/add" >/dev/null
EST2=$(curl -fsS "http://$COORD/v1/sketch/users/query" |
	sed 's/.*"estimate":\([0-9.e+]*\).*/\1/')
echo "global estimate after recovery + retried batch: $EST2 (true 50200)"
awk -v e="$EST2" 'BEGIN { d = e / 50200; if (d < 0.95 || d > 1.05) exit 1 }' ||
	{ echo "FAIL: estimate $EST2 outside 5% of 50200"; exit 1; }
HEALTHY=$(curl -fsS "http://$COORD/v1/cluster/status" | grep -o '"healthy":[0-9]*')
[ "$HEALTHY" = '"healthy":3' ] || { echo "FAIL: want 3 healthy shards after recovery"; exit 1; }

# Both tenants read whole again through the coordinator, still disjoint.
ACME2=$(curl -fsS "http://$COORD/v1/t/acme/sketch/users/query" |
	sed 's/.*"estimate":\([0-9.e+]*\).*/\1/')
GLOBEX2=$(curl -fsS "http://$COORD/v1/t/globex/sketch/users/query" |
	sed 's/.*"estimate":\([0-9.e+]*\).*/\1/')
echo "tenant estimates after recovery: acme $ACME2, globex $GLOBEX2"
awk -v e="$ACME2" 'BEGIN { d = e / 20000; if (d < 0.95 || d > 1.05) exit 1 }' ||
	{ echo "FAIL: acme estimate $ACME2 outside 5% of 20000 after recovery"; exit 1; }
awk -v e="$GLOBEX2" 'BEGIN { d = e / 5000; if (d < 0.95 || d > 1.05) exit 1 }' ||
	{ echo "FAIL: globex estimate $GLOBEX2 outside 5% of 5000 after recovery"; exit 1; }

echo "PASS: cluster smoke (3 shards + coordinator, 2 tenants, kill -9 + WAL recovery)"
