#!/bin/sh
# Compare two benchrun JSON reports and flag >10% ns/op regressions
# (and any allocs/op growth). Thin wrapper over cmd/benchdiff so CI
# and humans invoke the same comparer.
#
#   scripts/benchdiff.sh BENCH_1.json BENCH_2.json
#   scripts/benchdiff.sh -strict BENCH_2.json bench-smoke.json
#
# Default mode always exits 0 (informational — shared-runner noise
# must not gate merges); pass -strict to fail on flagged regressions.
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/benchdiff "$@"
