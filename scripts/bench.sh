#!/bin/sh
# Regenerate BENCH_1.json: run the internal/benchrun hot-path
# microbenchmark suite via sketchbench and write the JSON report at the
# repo root. Extra arguments pass through (e.g. -benchtime 100ms for a
# quick smoke run, -benchout - for stdout).
#
# With -run as the first argument the script runs sketchbench in
# experiment mode instead — `scripts/bench.sh -run E27` measures
# durable-sketchd ingest throughput at each fsync policy against the
# in-memory baseline (EXPERIMENTS.md E27); `scripts/bench.sh -run E25`
# is the in-memory loadgen.
set -eu
cd "$(dirname "$0")/.."
case "${1:-}" in
-run)
	exec go run ./cmd/sketchbench "$@"
	;;
esac
exec go run ./cmd/sketchbench -bench "$@"
