#!/bin/sh
# Regenerate BENCH_1.json: run the internal/benchrun hot-path
# microbenchmark suite via sketchbench and write the JSON report at the
# repo root. Extra arguments pass through (e.g. -benchtime 100ms for a
# quick smoke run, -benchout - for stdout).
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/sketchbench -bench "$@"
