#!/bin/sh
# Regenerate the benchmark baseline (BENCH_4.json as of PR 10): run the
# internal/benchrun hot-path microbenchmark suite via sketchbench and
# write the JSON report at the repo root. Extra arguments pass through
# (e.g. -benchtime 100ms for a quick smoke run, -benchout - for
# stdout). Compare two reports with scripts/benchdiff.sh.
#
# With -run as the first argument the script runs sketchbench in
# experiment mode instead — `scripts/bench.sh -run E28` measures the
# cache-conscious layouts (blocked Bloom, fused Count-Min, batched
# ingest, parallel tree-merge) against their scalar baselines;
# `scripts/bench.sh -run E27` measures durable-sketchd ingest
# throughput at each fsync policy; `scripts/bench.sh -run E25` is the
# in-memory loadgen.
set -eu
cd "$(dirname "$0")/.."
case "${1:-}" in
-run)
	exec go run ./cmd/sketchbench "$@"
	;;
esac
exec go run ./cmd/sketchbench -bench "$@"
