package sketch_test

import (
	"fmt"
	"sort"
	"testing"

	sketch "repro"
	"repro/internal/core"
	"repro/internal/randx"
)

// These integration tests exercise whole-pipeline scenarios across
// modules: the distributed merge experiment (E7), serialization across
// a simulated worker/aggregator boundary, and the facade surface.

// TestDistributedMergePipeline reproduces E7's core claim: shard a
// stream across 64 workers, summarize each shard independently, merge
// the summaries, and get the same answers as one sketch that saw the
// whole stream.
func TestDistributedMergePipeline(t *testing.T) {
	const shards = 64
	const perShard = 5000
	const domain = 20000

	rng := randx.New(1)
	z := randx.NewZipf(rng, 1.2, domain)

	type worker struct {
		hll *sketch.HLLSketch
		cm  *sketch.CountMin
		kll *sketch.KLLSketch
		ss  *sketch.SpaceSaving
	}
	workers := make([]worker, shards)
	for i := range workers {
		workers[i] = worker{
			hll: sketch.NewHLL(12, 7),
			cm:  sketch.NewCountMin(1024, 5, 7),
			kll: sketch.NewKLL(200, uint64(i)),
			ss:  sketch.NewSpaceSaving(256),
		}
	}
	whole := worker{
		hll: sketch.NewHLL(12, 7),
		cm:  sketch.NewCountMin(1024, 5, 7),
		kll: sketch.NewKLL(200, 999),
		ss:  sketch.NewSpaceSaving(256),
	}
	truthCounts := map[uint64]uint64{}
	var allVals []float64
	for s := 0; s < shards; s++ {
		for i := 0; i < perShard; i++ {
			v := z.Next()
			truthCounts[v]++
			val := float64(v)
			allVals = append(allVals, val)
			w := &workers[s]
			w.hll.AddUint64(v)
			w.cm.AddUint64(v, 1)
			w.kll.Add(val)
			w.ss.Add(fmt.Sprint(v), 1)
			whole.hll.AddUint64(v)
			whole.cm.AddUint64(v, 1)
			whole.kll.Add(val)
			whole.ss.Add(fmt.Sprint(v), 1)
		}
	}

	merged := workers[0]
	for s := 1; s < shards; s++ {
		if err := merged.hll.Merge(workers[s].hll); err != nil {
			t.Fatal(err)
		}
		if err := merged.cm.Merge(workers[s].cm); err != nil {
			t.Fatal(err)
		}
		if err := merged.kll.Merge(workers[s].kll); err != nil {
			t.Fatal(err)
		}
		if err := merged.ss.Merge(workers[s].ss); err != nil {
			t.Fatal(err)
		}
	}

	// HLL and Count-Min merges are exactly lossless.
	if merged.hll.Estimate() != whole.hll.Estimate() {
		t.Error("merged HLL differs from single-stream HLL")
	}
	for item := uint64(1); item <= 50; item++ {
		if merged.cm.EstimateUint64(item) != whole.cm.EstimateUint64(item) {
			t.Error("merged Count-Min differs from single-stream sketch")
			break
		}
	}
	// KLL merge preserves the rank guarantee (randomized, not
	// bit-identical). Zipf data has heavy ties, so a returned value
	// covers an interval of ranks; the error is the distance from the
	// target rank to that interval.
	sort.Float64s(allVals)
	n := float64(len(allVals))
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		est := merged.kll.Quantile(q)
		lo := sort.SearchFloat64s(allVals, est)
		hi := lo
		for hi < len(allVals) && allVals[hi] == est {
			hi++
		}
		target := q * n
		var re float64
		switch {
		case target < float64(lo):
			re = (float64(lo) - target) / n
		case target > float64(hi):
			re = (target - float64(hi)) / n
		}
		if re > 4*merged.kll.Eps() {
			t.Errorf("merged KLL q=%.2f rank error %.4f", q, re)
		}
	}
	// SpaceSaving merged summary must contain the true top items.
	type kv struct {
		item  uint64
		count uint64
	}
	var top []kv
	for item, c := range truthCounts {
		top = append(top, kv{item, c})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].count > top[j].count })
	for _, hot := range top[:10] {
		if merged.ss.Estimate(fmt.Sprint(hot.item)) < hot.count {
			t.Errorf("merged SpaceSaving lost top item %d", hot.item)
		}
	}
	// True distinct count for reference accuracy.
	if err := core.RelErr(merged.hll.Estimate(), float64(len(truthCounts))); err > 0.05 {
		t.Errorf("merged HLL rel err %.4f vs true distinct %d", err, len(truthCounts))
	}
}

// TestSerializationAcrossBoundary simulates workers that serialize
// sketches to bytes (as they would onto a wire or into a row store) and
// an aggregator that restores and merges them.
func TestSerializationAcrossBoundary(t *testing.T) {
	wire := make([][]byte, 0, 8)
	var wantDistinct float64
	for w := 0; w < 8; w++ {
		h := sketch.NewHLL(11, 42)
		for i := 0; i < 10000; i++ {
			h.AddUint64(uint64(w*10000 + i))
		}
		wantDistinct += 10000
		data, err := h.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		wire = append(wire, data)
	}
	agg := sketch.NewHLL(11, 42)
	for _, data := range wire {
		var h sketch.HLLSketch
		if err := h.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if err := agg.Merge(&h); err != nil {
			t.Fatal(err)
		}
	}
	if err := core.RelErr(agg.Estimate(), wantDistinct); err > 0.1 {
		t.Errorf("aggregated estimate rel err %.4f", err)
	}
}

// TestFacadeConstructorsSmoke constructs every sketch through the
// public facade and performs one update+query.
func TestFacadeConstructorsSmoke(t *testing.T) {
	b := sketch.NewBloomWithEstimates(100, 0.01, 1)
	b.AddString("x")
	if !b.ContainsString("x") {
		t.Error("bloom")
	}
	cb := sketch.NewCountingBloom(128, 3, 1)
	cb.Add([]byte("x"))

	m := sketch.NewMorris(1)
	m.Increment()
	ny := sketch.NewNelsonYu(0.2, 0.1, 1)
	ny.Increment()

	fm := sketch.NewFM(64, 1)
	fm.AddUint64(1)
	ll := sketch.NewLogLog(8, 1)
	ll.AddUint64(1)
	h := sketch.NewHLL(10, 1)
	h.AddUint64(1)
	hpp := sketch.NewHLLPP(10, 1)
	hpp.AddUint64(1)
	kmv := sketch.NewKMV(16, 1)
	kmv.AddUint64(1)

	cm := sketch.NewCountMin(64, 3, 1)
	cm.AddString("x")
	cs := sketch.NewCountSketch(64, 3, 1)
	cs.AddUint64(1, 1)
	mg := sketch.NewMisraGries(8)
	mg.AddString("x")
	ss := sketch.NewSpaceSaving(8)
	ss.AddString("x")
	mj := sketch.NewMajority()
	mj.Add("x")
	dy := sketch.NewDyadicCountMin(8, 64, 3, 1)
	dy.Add(5, 1)

	a := sketch.NewAMS(3, 16, 1)
	a.AddUint64(1, 1)
	if _, err := sketch.NewAMSWithSpec(sketch.Spec{Epsilon: 0.2, Delta: 0.1}, 1); err != nil {
		t.Error(err)
	}
	if _, err := sketch.NewCountMinWithSpec(sketch.Spec{Epsilon: 0.01, Delta: 0.01}, 1); err != nil {
		t.Error(err)
	}

	gk := sketch.NewGK(0.05)
	gk.Add(1)
	kll := sketch.NewKLL(64, 1)
	kll.Add(1)
	qd := sketch.NewQDigest(8, 16)
	qd.Add(5, 1)
	td := sketch.NewTDigest(50)
	td.Add(1)
	mrl := sketch.NewMRL(4, 16, 1)
	mrl.Add(1)
	ex := sketch.NewExactQuantiles()
	ex.Add(1)

	r := sketch.NewReservoir(4, 1)
	r.AddString("x")
	wr := sketch.NewWeightedReservoir(4, 1)
	wr.Add([]byte("x"), 2)
	l0 := sketch.NewL0Sampler(4, 1)
	l0.Update(3, 1)
	sr := sketch.NewSparseRecovery(4, 1)
	sr.Update(3, 1)

	var tr sketch.JLTransform = sketch.NewGaussianJL(8, 4, 1)
	_ = tr.Apply(make([]float64, 8))
	sketch.NewRademacherJL(8, 4, 1)
	sketch.NewSparseJL(8, 4, 2, 1)
	if sketch.JLTargetDim(100, 0.5) < 1 {
		t.Error("target dim")
	}

	mh := sketch.NewMinHash(16, 1)
	mh.AddString("x")
	ix := sketch.NewLSHIndex(4, 4)
	if err := ix.Add("a", mh); err != nil {
		t.Error(err)
	}
	sh := sketch.NewSimHash(4, 16, 1)
	sh.Hash(make([]float64, 4))
	el := sketch.NewEuclideanLSH(4, 2, 1, 1)
	el.Hash(make([]float64, 4))

	g := sketch.NewGraphSketch(8, 4, 1)
	g.AddEdge(0, 1)

	rr := sketch.NewRandomizedResponse(1, 1)
	rr.Perturb(true)
	rp := sketch.NewRAPPOR(16, 2, 2, 1)
	rp.Encode("v", 1)
	pc := sketch.NewPrivateCMS(32, 4, 2, 1)
	pc.Absorb(pc.EncodeClient("v", 1))
	dp := sketch.NewDPCountMin(32, 3, 1, 1)
	dp.AddString("x")
	lm := sketch.NewLaplaceMechanism(1, 1, 1)
	lm.Release(0)
	gm := sketch.NewGaussianMechanism(1, 0.01, 1, 1)
	gm.Release(0)

	rf := sketch.NewRobustF2(0.5, sketch.RobustLambdaFor(0.5, 1e6), 1, 16, 1)
	rf.AddUint64(1, 1)
	rf.Estimate()

	gs := sketch.NewGradSketch(3, 16, 1)
	gs.Accumulate(make([]float64, 8), 1)

	shll := sketch.NewShardedHLL(2, 10, 1)
	shll.Handle().AddUint64(1)
	acm := sketch.NewAtomicCountMin(32, 3, 1)
	acm.AddUint64(1, 1)

	// Extension families.
	req := sketch.NewREQ(16, 1)
	req.Add(1)
	lp := sketch.NewLpSampler(1, 64, 3, 1)
	lp.Update(3, 2)
	ts := sketch.NewTensorSketch(8, 16, 2, 1)
	_ = ts.Apply(make([]float64, 8))
	fd := sketch.NewFrequentDirections(4, 8, 1)
	fd.Append(make([]float64, 8))
	am := sketch.NewAMM(16, 4, 4, 1)
	am.Append(make([]float64, 4), make([]float64, 4))
	eh := sketch.NewEH(100, 8)
	eh.Tick(1)
	eh.Add()
	wh := sketch.NewWindowedHLL(100, 4, 10, 1)
	wh.Tick(1)
	wh.AddUint64(1)

	// Error vocabulary is exported.
	if sketch.ErrIncompatible == nil || sketch.ErrCorrupt == nil {
		t.Error("error values missing")
	}
}

// TestMergeCommutativityProperty checks commutativity of merges across
// several mergeable sketches under random shard splits.
func TestMergeCommutativityProperty(t *testing.T) {
	rng := randx.New(5)
	for trial := 0; trial < 10; trial++ {
		items := make([]uint64, 2000)
		for i := range items {
			items[i] = uint64(rng.Intn(500))
		}
		cut := 500 + rng.Intn(1000)

		buildHLL := func(vals []uint64) *sketch.HLLSketch {
			h := sketch.NewHLL(10, 3)
			for _, v := range vals {
				h.AddUint64(v)
			}
			return h
		}
		ab := buildHLL(items[:cut])
		if err := ab.Merge(buildHLL(items[cut:])); err != nil {
			t.Fatal(err)
		}
		ba := buildHLL(items[cut:])
		if err := ba.Merge(buildHLL(items[:cut])); err != nil {
			t.Fatal(err)
		}
		if ab.Estimate() != ba.Estimate() {
			t.Fatal("HLL merge not commutative")
		}

		buildKMV := func(vals []uint64) *sketch.KMVSketch {
			s := sketch.NewKMV(64, 3)
			for _, v := range vals {
				s.AddUint64(v)
			}
			return s
		}
		kab := buildKMV(items[:cut])
		if err := kab.Merge(buildKMV(items[cut:])); err != nil {
			t.Fatal(err)
		}
		kba := buildKMV(items[cut:])
		if err := kba.Merge(buildKMV(items[:cut])); err != nil {
			t.Fatal(err)
		}
		if kab.Estimate() != kba.Estimate() {
			t.Fatal("KMV merge not commutative")
		}
	}
}
