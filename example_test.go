package sketch_test

// Godoc examples for the facade: each compiles, runs under go test,
// and appears in the package documentation.

import (
	"fmt"

	sketch "repro"
)

func ExampleNewHLL() {
	h := sketch.NewHLL(14, 42)
	for i := 0; i < 500000; i++ {
		h.AddString(fmt.Sprintf("user-%d", i%100000))
	}
	est := h.Estimate()
	fmt.Println(est > 98000 && est < 102000)
	// Output: true
}

func ExampleHLLSketch_Merge() {
	east := sketch.NewHLL(12, 7)
	west := sketch.NewHLL(12, 7)
	for i := 0; i < 60000; i++ {
		east.AddUint64(uint64(i))
		west.AddUint64(uint64(i + 30000)) // half the users overlap
	}
	if err := east.Merge(west); err != nil {
		panic(err)
	}
	est := east.Estimate()
	fmt.Println(est > 85000 && est < 95000)
	// Output: true
}

func ExampleNewCountMin() {
	cm := sketch.NewCountMin(2048, 5, 1)
	for i := 0; i < 1000; i++ {
		cm.AddString("popular")
	}
	cm.AddString("rare")
	fmt.Println(cm.EstimateString("popular") >= 1000)
	fmt.Println(cm.EstimateString("rare") >= 1)
	// Output:
	// true
	// true
}

func ExampleNewSpaceSaving() {
	ss := sketch.NewSpaceSaving(16)
	for i := 0; i < 900; i++ {
		ss.Add("hot", 1)
	}
	for i := 0; i < 100; i++ {
		ss.Add(fmt.Sprintf("cold-%d", i), 1)
	}
	top := ss.Entries()[0]
	fmt.Println(top.Item, top.Count >= 900)
	// Output: hot true
}

func ExampleNewKLL() {
	kll := sketch.NewKLL(200, 3)
	for i := 1; i <= 100000; i++ {
		kll.Add(float64(i))
	}
	med := kll.Quantile(0.5)
	fmt.Println(med > 48000 && med < 52000)
	// Output: true
}

func ExampleNewBloomWithEstimates() {
	seen := sketch.NewBloomWithEstimates(10000, 0.001, 9)
	seen.AddString("alice")
	fmt.Println(seen.ContainsString("alice"), seen.ContainsString("bob"))
	// Output: true false
}

func ExampleNewTheta() {
	a := sketch.NewTheta(4096, 5)
	b := sketch.NewTheta(4096, 5)
	for i := 0; i < 60000; i++ {
		a.AddUint64(uint64(i)) // A = [0, 60k)
	}
	for i := 40000; i < 100000; i++ {
		b.AddUint64(uint64(i)) // B = [40k, 100k)
	}
	inter, err := a.Intersect(b)
	if err != nil {
		panic(err)
	}
	est := inter.Estimate() // true overlap: 20k
	fmt.Println(est > 17000 && est < 23000)
	// Output: true
}

func ExampleNewREQ() {
	req := sketch.NewREQ(32, 11)
	for i := 1; i <= 200000; i++ {
		req.Add(float64(i))
	}
	p999 := req.Quantile(0.999)
	fmt.Println(p999 > 199000 && p999 <= 200000)
	// Output: true
}

func ExampleNewMinHash() {
	a := sketch.NewMinHash(256, 13)
	b := sketch.NewMinHash(256, 13)
	for i := 0; i < 1000; i++ {
		a.AddString(fmt.Sprint(i))
		b.AddString(fmt.Sprint(i + 500)) // 1/3 Jaccard similarity
	}
	sim, err := a.Similarity(b)
	if err != nil {
		panic(err)
	}
	fmt.Println(sim > 0.2 && sim < 0.47)
	// Output: true
}

func ExampleNewMorris() {
	m := sketch.NewMorrisBase(1.01, 17) // base near 1: tight estimates
	m.IncrementN(1000000)
	est := m.Count()
	fmt.Println(est > 800000 && est < 1250000)
	// Output: true
}

func ExampleNewEH() {
	eh := sketch.NewEH(100, 16) // last 100 ticks, ~6% error
	for ts := uint64(1); ts <= 1000; ts++ {
		eh.Tick(ts)
		eh.Add()
	}
	c := eh.Count() // ~100 events in the window
	fmt.Println(c > 90 && c < 110)
	// Output: true
}

func ExampleNewGraphSketch() {
	g := sketch.NewGraphSketch(6, 8, 19)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	fmt.Println(g.Connected(0, 2), g.Connected(0, 3))
	// Output: true false
}

func ExampleNewDPCountMin() {
	dp := sketch.NewDPCountMin(2048, 5, 1.0, 21)
	for i := 0; i < 10000; i++ {
		dp.AddString(fmt.Sprintf("item-%d", i%10))
	}
	dp.Release(23) // adds calibrated Laplace noise; further updates panic
	est, err := dp.EstimateString("item-3")
	if err != nil {
		panic(err)
	}
	fmt.Println(est > 900 && est < 1100) // true count 1000 ± noise
	// Output: true
}
