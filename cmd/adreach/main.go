// Command adreach runs the paper's online-advertising case study (§3)
// end to end: generate a synthetic impression log, maintain mergeable
// HLL reach sketches per campaign and demographic slice, and print the
// reach report an advertiser would read — distinct users, sliced and
// diced, without double counting.
package main

import (
	"flag"
	"fmt"

	"repro/internal/adtech"
	"repro/internal/core"
)

func main() {
	impressions := flag.Int("n", 500000, "impressions to generate")
	campaigns := flag.Int("campaigns", 12, "number of campaigns")
	users := flag.Int("users", 200000, "size of the user population")
	seed := flag.Uint64("seed", 1, "generator seed")
	flag.Parse()

	gen := adtech.NewGenerator(*campaigns, *users, *seed)
	rep := adtech.NewReporter(14, *seed+1)
	exact := map[int]map[uint64]bool{}
	for i := 0; i < *impressions; i++ {
		imp := gen.Next()
		rep.Record(imp)
		if exact[imp.CampaignID] == nil {
			exact[imp.CampaignID] = map[uint64]bool{}
		}
		exact[imp.CampaignID][imp.UserID] = true
	}

	tbl := core.NewTable(
		fmt.Sprintf("Campaign reach, %d impressions over %d users", *impressions, *users),
		"campaign", "impressions-served reach (sketch)", "true reach", "relerr")
	for _, c := range rep.Campaigns() {
		est := rep.Reach(c)
		truth := float64(len(exact[c]))
		tbl.AddRow(c, est, truth, core.RelErr(est, truth))
	}
	fmt.Println(tbl.String())

	top := rep.Campaigns()[0]
	slice := core.NewTable(fmt.Sprintf("Campaign %d sliced by region", top),
		"region", "reach (sketch)")
	for _, r := range adtech.Regions {
		slice.AddRow(r, rep.SliceReach(top, "region", r))
	}
	fmt.Println(slice.String())

	rollup, err := rep.RollupReach(top, "region")
	if err != nil {
		panic(err)
	}
	combined, err := rep.CombinedReach(rep.Campaigns()...)
	if err != nil {
		panic(err)
	}
	fmt.Printf("campaign %d rollup-of-regions == total: %v\n", top, rollup == rep.Reach(top))
	fmt.Printf("deduplicated cross-campaign reach: %.0f users\n", combined)
	fmt.Printf("sketch memory: %d bytes across %d sketches\n", rep.SizeBytes(), rep.SketchCount())
}
