package main

import (
	"flag"
	"fmt"
	"net/url"
	"os"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/registry"
	"repro/internal/server/client"
)

// cluster subcommands — the operator's view of a sketchd fleet. status
// polls every shard's /v1/status; merge scatter-gathers one sketch's
// envelopes and tree-merges them locally, so a global answer needs no
// coordinator process at all (merge is the cluster's whole trick).
func runCluster(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: sketchcli cluster <status|merge> [flags]")
	}
	switch args[0] {
	case "status":
		return runClusterStatus(args[1:])
	case "merge":
		return runClusterMerge(args[1:])
	default:
		return fmt.Errorf("usage: sketchcli cluster <status|merge> [flags]")
	}
}

func shardList(s string) ([]string, error) {
	if s == "" {
		return nil, fmt.Errorf("-shards url1,url2,... is required")
	}
	urls := strings.Split(s, ",")
	for i, u := range urls {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		urls[i] = u
	}
	return urls, nil
}

func runClusterStatus(args []string) error {
	fs := flag.NewFlagSet("cluster status", flag.ExitOnError)
	shards := fs.String("shards", "", "comma-separated shard base URLs")
	tenant := fs.String("tenant", "", "show only this tenant's per-shard row (default: all tenants)")
	tenants := fs.Bool("tenants", false, "print a per-tenant row under each shard")
	if err := fs.Parse(args); err != nil {
		return err
	}
	urls, err := shardList(*shards)
	if err != nil {
		return err
	}
	down := 0
	for _, u := range urls {
		st, err := client.New(u).Status()
		if err != nil {
			fmt.Printf("%-28s DOWN  %v\n", u, err)
			down++
			continue
		}
		line := fmt.Sprintf("%-28s up %6.0fs  sketches %-3d adds %-10d", u, st.UptimeSeconds, st.Sketches, st.Ops.Adds)
		if st.Durability.Enabled {
			line += fmt.Sprintf("  wal_lsn %-8d snap_lsn %-8d", st.Durability.WALLSN, st.Durability.LastSnapshotLSN)
		}
		switch st.Replication.Role {
		case "leader":
			line += fmt.Sprintf("  leader lag %d recs (follower seen %dms ago)",
				st.Replication.LagRecords, st.Replication.FollowerAgeMS)
		case "follower":
			line += fmt.Sprintf("  follows %s applied %d lag %d recs",
				st.Replication.Leader, st.Replication.AppliedLSN, st.Replication.LagRecords)
		}
		fmt.Println(line)
		if *tenants || *tenant != "" {
			for _, t := range st.Tenants {
				if *tenant != "" && t.Tenant != *tenant {
					continue
				}
				fmt.Printf("  tenant %-20s sketches %-3d resident %-10d adds %-10d queries %-8d evictions %d\n",
					t.Tenant, t.Sketches, t.ResidentBytes, t.Adds, t.Queries, t.Evictions)
			}
		}
	}
	if down > 0 {
		return fmt.Errorf("%d of %d shards down", down, len(urls))
	}
	return nil
}

func runClusterMerge(args []string) error {
	fs := flag.NewFlagSet("cluster merge", flag.ExitOnError)
	shards := fs.String("shards", "", "comma-separated shard base URLs")
	name := fs.String("name", "", "sketch name to gather")
	tenant := fs.String("tenant", "", "tenant namespace to gather from (default: the default tenant)")
	out := fs.String("o", "", "write the merged envelope here instead of summarizing it")
	wire := fs.String("wire", "", "envelope form to gather: full or slim (default: each shard's full form)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	urls, err := shardList(*shards)
	if err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("-name is required")
	}
	if *wire != "" && *wire != "full" && *wire != "slim" {
		return fmt.Errorf("-wire must be full or slim, got %q", *wire)
	}
	envs := make([][]byte, 0, len(urls))
	gathered := 0
	for _, u := range urls {
		env, err := client.New(u).Tenant(*tenant).SnapshotWire(*name, *wire)
		if err != nil {
			return fmt.Errorf("shard %s: %w", u, err)
		}
		envs = append(envs, env)
		gathered += len(env)
	}
	merged, d, err := cluster.MergeEnvelopes(envs)
	if err != nil {
		return err
	}
	if *out != "" {
		env, err := registry.Marshal(merged)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, env, 0o644); err != nil {
			return err
		}
		fmt.Printf("%s: merged %d shard envelopes (%s) into %s (%d bytes)\n",
			*name, len(envs), d.Name, *out, len(env))
		return nil
	}
	res, err := d.Bind.Query(merged, url.Values{})
	if err != nil {
		return err
	}
	fmt.Printf("%s: %s over %d shards (%d gathered bytes)\n", *name, d.Name, len(envs), gathered)
	keys := make([]string, 0, len(res))
	for k := range res {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-12s %v\n", k, res[k])
	}
	return nil
}
