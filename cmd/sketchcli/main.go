// Command sketchcli builds sketches over newline-delimited items from
// stdin and answers queries — the practitioner-facing tool the paper's
// "pushing out code" pathway argues for.
//
// Usage:
//
//	sketchcli distinct [-p 14]              # count distinct lines (HLL)
//	sketchcli topk [-k 20]                  # heavy hitters (SpaceSaving)
//	sketchcli quantiles [-q .5,.9,.99]      # numeric quantiles (KLL)
//	sketchcli membership -query item [...]  # Bloom filter membership
//	sketchcli f2                            # second frequency moment (AMS)
//	sketchcli inspect file.bin              # identify + summarize any envelope
//	sketchcli merge -o out.bin a.bin b.bin  # merge same-type envelopes
//	sketchcli types                         # list every registered family
//
// inspect, merge, and types are fully registry-driven: they work for
// every sketch family without naming a single one, because each GSK1
// envelope self-describes its type through the wire tag.
//
// Examples:
//
//	cat access.log | awk '{print $1}' | sketchcli distinct
//	cat words.txt | sketchcli topk -k 10
//	cat latencies.txt | sketchcli quantiles -q 0.5,0.99
//	curl -s sketchd:7600/v1/sketch/users/snapshot | sketchcli inspect /dev/stdin
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"

	sketch "repro"
	"repro/internal/mergex"
	"repro/internal/registry"
	"repro/internal/robust"
	"repro/internal/robust/attack"
	sketchclient "repro/internal/server/client"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "distinct":
		err = runDistinct(args)
	case "topk":
		err = runTopK(args)
	case "quantiles":
		err = runQuantiles(args)
	case "membership":
		err = runMembership(args)
	case "f2":
		err = runF2(args)
	case "reach":
		err = runReach(args)
	case "inspect":
		err = runInspect(args)
	case "merge":
		err = runMerge(args)
	case "types":
		err = runTypes(args)
	case "cluster":
		err = runCluster(args)
	case "redteam":
		err = runRedteam(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sketchcli:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: sketchcli <distinct|topk|quantiles|membership|f2|reach|inspect|merge|types|cluster|redteam> [flags]
  distinct   [-p precision]     estimate distinct lines with HyperLogLog
  topk       [-k counters]      heavy hitters with SpaceSaving
  quantiles  [-q q1,q2,...]     numeric quantiles with KLL
  membership -query item [...]  Bloom-filter membership of query items
  f2                            second frequency moment with AMS
  reach      [-p precision]     per-group distinct counts from "group,id" lines
  inspect    <file>             identify and summarize any serialized sketch
  merge      -o out a b [...]   merge same-type serialized sketches
  types                         list every registered sketch family
  cluster status -shards a,b [-tenants|-tenant t]
                                per-shard health, durability, replication lag,
                                optionally with per-tenant gauge rows
  cluster merge  -shards a,b -name s [-tenant t] [-o out]
                                scatter-gather a sketch and merge it locally
  redteam    [-mode hll] [-p 10] [-seed 1] [-url http://host:7600 -sketch s]
                                run the quadratic adaptive attack against a local
                                estimator pair, or transfer it onto a live sketchd
                                sketch sharing the seed`)
}

func scanLines(fn func(line string)) error {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			fn(line)
		}
	}
	return sc.Err()
}

func runDistinct(args []string) error {
	fs := flag.NewFlagSet("distinct", flag.ExitOnError)
	p := fs.Int("p", 14, "HLL precision (4-18)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	h := sketch.NewHLL(uint8(*p), 0)
	var n uint64
	if err := scanLines(func(line string) { h.AddString(line); n++ }); err != nil {
		return err
	}
	fmt.Printf("lines:    %d\n", n)
	fmt.Printf("distinct: %.0f (±%.1f%% expected)\n", h.Estimate(), 100*h.StandardError())
	fmt.Printf("sketch:   %d bytes\n", h.SizeBytes())
	return nil
}

func runTopK(args []string) error {
	fs := flag.NewFlagSet("topk", flag.ExitOnError)
	k := fs.Int("k", 20, "number of counters / results")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ss := sketch.NewSpaceSaving(*k * 4) // extra counters sharpen the top-k
	if err := scanLines(func(line string) { ss.Add(line, 1) }); err != nil {
		return err
	}
	entries := ss.Entries()
	if len(entries) > *k {
		entries = entries[:*k]
	}
	for i, e := range entries {
		fmt.Printf("%3d  %-40s ~%d (>=%d)\n", i+1, e.Item, e.Count, ss.GuaranteedCount(e.Item))
	}
	return nil
}

func runQuantiles(args []string) error {
	fs := flag.NewFlagSet("quantiles", flag.ExitOnError)
	qs := fs.String("q", "0.5,0.9,0.99", "comma-separated quantiles")
	if err := fs.Parse(args); err != nil {
		return err
	}
	kll := sketch.NewKLL(200, 0)
	var skipped int
	if err := scanLines(func(line string) {
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			skipped++
			return
		}
		kll.Add(v)
	}); err != nil {
		return err
	}
	if kll.N() == 0 {
		return fmt.Errorf("no numeric input")
	}
	fmt.Printf("n: %d  min: %g  max: %g\n", kll.N(), kll.Min(), kll.Max())
	for _, qStr := range strings.Split(*qs, ",") {
		q, err := strconv.ParseFloat(strings.TrimSpace(qStr), 64)
		if err != nil {
			return fmt.Errorf("bad quantile %q: %v", qStr, err)
		}
		fmt.Printf("q%.4g: %g\n", q, kll.Quantile(q))
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "(skipped %d non-numeric lines)\n", skipped)
	}
	return nil
}

func runMembership(args []string) error {
	fs := flag.NewFlagSet("membership", flag.ExitOnError)
	query := fs.String("query", "", "comma-separated items to test")
	fpr := fs.Float64("fpr", 0.01, "target false positive rate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *query == "" {
		return fmt.Errorf("membership requires -query")
	}
	var lines []string
	if err := scanLines(func(line string) { lines = append(lines, line) }); err != nil {
		return err
	}
	f := sketch.NewBloomWithEstimates(uint64(len(lines))+1, *fpr, 0)
	for _, l := range lines {
		f.AddString(l)
	}
	for _, q := range strings.Split(*query, ",") {
		q = strings.TrimSpace(q)
		verdict := "definitely absent"
		if f.ContainsString(q) {
			verdict = fmt.Sprintf("maybe present (FPR %.2g)", f.EstimatedFPR())
		}
		fmt.Printf("%-40s %s\n", q, verdict)
	}
	return nil
}

// runReach reads "group,id" lines and reports distinct ids per group
// plus the deduplicated total — the ad-reach pipeline over stdin.
func runReach(args []string) error {
	fs := flag.NewFlagSet("reach", flag.ExitOnError)
	p := fs.Int("p", 14, "HLL precision (4-18)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	groups := map[string]*sketch.HLLSketch{}
	total := sketch.NewHLL(uint8(*p), 0)
	var badLines int
	if err := scanLines(func(line string) {
		group, id, ok := strings.Cut(line, ",")
		if !ok {
			badLines++
			return
		}
		h, found := groups[group]
		if !found {
			h = sketch.NewHLL(uint8(*p), 0)
			groups[group] = h
		}
		h.AddString(id)
		total.AddString(id)
	}); err != nil {
		return err
	}
	names := make([]string, 0, len(groups))
	for g := range groups {
		names = append(names, g)
	}
	sort.Strings(names)
	for _, g := range names {
		fmt.Printf("%-30s %.0f\n", g, groups[g].Estimate())
	}
	fmt.Printf("%-30s %.0f (union of all groups)\n", "TOTAL", total.Estimate())
	if badLines > 0 {
		fmt.Fprintf(os.Stderr, "(skipped %d malformed lines)\n", badLines)
	}
	return nil
}

// runInspect decodes any serialized sketch through the registry and
// prints its identity plus the family's parameter-free summary query —
// the same document sketchd serves on /query with no parameters.
func runInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: sketchcli inspect <file>")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	inst, d, err := registry.Decode(data)
	if err != nil {
		return err
	}
	fmt.Printf("type:     %s (%s)\n", d.Name, d.Family)
	fmt.Printf("doc:      %s\n", d.Doc)
	fmt.Printf("tag:      %d\n", d.Tag)
	fmt.Printf("envelope: %d bytes\n", len(data))
	fmt.Printf("memory:   %d bytes\n", registry.SizeOf(inst))
	if d.Bind.Query == nil {
		return nil
	}
	doc, err := d.Bind.Query(inst, url.Values{})
	if err != nil {
		return err
	}
	keys := make([]string, 0, len(doc))
	for k := range doc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%-9s %v\n", k+":", doc[k])
	}
	return nil
}

// runMerge folds any number of same-type envelopes into one, writing
// the merged envelope to -o (or stdout with "-"). Distributed
// aggregation from the command line: each input self-describes, the
// registry supplies the merge, and the fold runs as a parallel binary
// tree across GOMAXPROCS cores. Incompatible inputs fail loudly.
func runMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("o", "-", `output file ("-" for stdout)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 2 {
		return fmt.Errorf("usage: sketchcli merge -o out.bin a.bin b.bin [...]")
	}
	var d *registry.Descriptor
	insts := make([]any, fs.NArg())
	for i, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		inst, id, err := registry.Decode(data)
		if err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		if d == nil {
			d = id
			if d.Bind.Merge == nil {
				return fmt.Errorf("%s sketches do not merge", d.Name)
			}
		} else if id != d {
			return fmt.Errorf("%s: is a %s, cannot merge into %s", path, id.Name, d.Name)
		}
		insts[i] = inst
	}
	merged, err := mergex.Tree(insts, d.Bind.Merge)
	if err != nil {
		return err
	}
	env, err := registry.Marshal(merged)
	if err != nil {
		return err
	}
	if *out == "-" {
		_, err = os.Stdout.Write(env)
		return err
	}
	return os.WriteFile(*out, env, 0o644)
}

// runTypes prints the registry catalog: every family, its wire tag,
// capabilities, and parameter schema.
func runTypes(args []string) error {
	fs := flag.NewFlagSet("types", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, d := range registry.All() {
		caps := make([]string, 0, 2)
		if d.Mergeable() {
			caps = append(caps, "merge")
		}
		if d.Servable() {
			caps = append(caps, "serve")
		}
		fmt.Printf("%-18s tag %2d  %-12s [%s]  %s\n", d.Name, d.Tag, d.Family, strings.Join(caps, ","), d.Doc)
		for _, p := range d.Params {
			fmt.Printf("    -%-10s default %-8g [%g,%g]  %s\n", p.Name, p.Def, p.Min, p.Max, p.Doc)
		}
	}
	return nil
}

// runRedteam mounts the universal adaptive attack (Cohen–Nelson–
// Sarlós, see internal/robust/attack) from the command line: against a
// local probe/victim pair of the chosen mode, or — with -url — a
// transfer attack where the mask hunt runs against a local probe and
// the masked set is replayed into a live sketchd sketch created with
// the same seed. Prints the attack curve and a verdict.
func runRedteam(args []string) error {
	fs := flag.NewFlagSet("redteam", flag.ExitOnError)
	mode := fs.String("mode", "hll",
		"target: hll | kmv | switching | switching-kmv | noisy | subsampled | robustdistinct")
	p := fs.Int("p", 10, "HLL precision for hll-backed modes (4-18)")
	k := fs.Int("k", 0, "KMV minima for kmv modes (default 2^p)")
	seed := fs.Uint64("seed", 1, "hash seed shared by probe and victim (sketchd default: 1)")
	baseURL := fs.String("url", "", "live sketchd base URL (transfer attack)")
	name := fs.String("sketch", "", "live victim sketch name (with -url)")
	tenant := fs.String("tenant", "", "tenant namespace for the live victim")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *k == 0 {
		*k = 1 << *p
	}
	cfg := attack.Config{K: 1 << *p, Seed: *seed ^ 0xc1}
	pair := func(mk func() robust.Estimator) (attack.Target, attack.Target) {
		return attack.NewEstimatorTarget(mk()), attack.NewEstimatorTarget(mk())
	}
	var probe, victim attack.Target
	switch *mode {
	case "hll":
		probe, victim = attack.NewHLLTarget(uint8(*p), *seed), attack.NewHLLTarget(uint8(*p), *seed)
	case "kmv":
		cfg.K = *k
		probe, victim = attack.NewKMVTarget(*k, *seed), attack.NewKMVTarget(*k, *seed)
	case "switching":
		probe, victim = pair(func() robust.Estimator { return robust.NewSwitchingHLL(0.05, 24, uint8(*p), *seed) })
	case "switching-kmv":
		cfg.K = *k
		probe, victim = pair(func() robust.Estimator { return robust.NewSwitchingKMV(0.05, 24, *k, *seed) })
	case "noisy":
		probe, victim = pair(func() robust.Estimator {
			return robust.NewNoisy(sketch.NewHLL(uint8(*p), *seed), 0.1, *seed)
		})
	case "subsampled":
		probe, victim = pair(func() robust.Estimator {
			return robust.NewSubsampled(sketch.NewHLL(uint8(*p), *seed), 0.125, *seed)
		})
	case "robustdistinct":
		probe, victim = pair(func() robust.Estimator {
			return robust.NewDefendedDistinct(0.05, 24, uint8(*p), *seed, 0.1, 0.5)
		})
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}
	// Hunt a 64·K attack set — the same strengthened budget E32 uses,
	// enough to push a raw sketch past 2x while staying well inside the
	// quadratic bound.
	cfg.MaskTarget = 64 * cfg.K
	if *baseURL != "" {
		if *name == "" {
			return fmt.Errorf("redteam -url requires -sketch")
		}
		cl := sketchclient.New(*baseURL)
		if *tenant != "" {
			cl = cl.Tenant(*tenant)
		}
		victim = attack.NewServerTarget(cl, *name)
	}

	res, err := attack.Run(probe, victim, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("mode: %s  k: %d  quadratic budget: %d interactions\n",
		*mode, cfg.K, attack.QuadraticBudget(cfg.K))
	fmt.Printf("hunt: probed %d candidates, masked %d; total interactions %d\n",
		res.Probed, res.Masked, res.Interactions)
	if res.Refused {
		fmt.Println("verdict: REFUSED — the query budget cut the attack off (429)")
		return nil
	}
	fmt.Printf("%12s %12s %12s %10s\n", "interactions", "truth", "estimate", "rel-error")
	for _, pt := range res.Curve {
		fmt.Printf("%12d %12.0f %12.0f %9.2fx\n", pt.Interactions, pt.Truth, pt.Estimate, pt.RelError)
	}
	switch {
	case res.InteractionsToFail >= 0:
		fmt.Printf("verdict: BROKEN — %.2fx relative error; failed at %d interactions (budget %d)\n",
			res.FinalRelError, res.InteractionsToFail, attack.QuadraticBudget(cfg.K))
	default:
		fmt.Printf("verdict: bounded — %.2fx relative error after the full attack set\n", res.FinalRelError)
	}
	return nil
}

func runF2(args []string) error {
	fs := flag.NewFlagSet("f2", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	a := sketch.NewAMS(9, 256, 0)
	var n uint64
	if err := scanLines(func(line string) { a.Update([]byte(line)); n++ }); err != nil {
		return err
	}
	fmt.Printf("lines: %d\n", n)
	fmt.Printf("F2 (self-join size): %.0f\n", a.F2())
	return nil
}
