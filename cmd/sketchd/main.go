// Command sketchd serves the sketch library over HTTP: a namespace of
// named sketches (any servable registry family) with batched ingest,
// queries, mergeable-summary exchange, and /debug/statsz counters. See
// internal/server for the route table and README "Running sketchd"
// for curl examples.
//
// With -data-dir set, sketchd is durable: every mutation is appended
// to a write-ahead log (group-committed by a background syncer),
// periodic snapshots truncate the log, and a restart — clean or not —
// recovers every sketch from the latest snapshot plus the WAL tail.
// Without -data-dir the server is in-memory only, exactly as before.
//
// Usage:
//
//	sketchd -addr :7600
//	sketchd -addr :7600 -data-dir /var/lib/sketchd \
//	        -fsync-interval 100ms -snapshot-interval 1m -wal-max-bytes 67108864
//
// -fsync-interval > 0 group-commits on that period (bounded data-loss
// window); 0 fsyncs after every drained batch; negative never fsyncs
// (the OS page cache decides).
//
// -concurrent-ingest=buffered switches hll, countmin, and blockedbloom
// serving to the local-buffer/global-propagation variants: writer-local
// ingest buffers drained by a propagator goroutine, wait-free reads
// with a bounded staleness window (reported as staleness_bound on
// queries). Ideal for many-writer ingest-heavy workloads; atomic (the
// default) keeps reads exact to the last completed batch.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/concurrent"
	"repro/internal/durable"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":7600", "listen address")
	dataDir := flag.String("data-dir", "", "durability directory (empty: in-memory only)")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond,
		"WAL group-commit interval (>0 timed, 0 per-batch, <0 never fsync)")
	snapshotInterval := flag.Duration("snapshot-interval", time.Minute,
		"interval between snapshots that truncate the WAL (<=0 disables the timer)")
	walMaxBytes := flag.Int64("wal-max-bytes", 64<<20,
		"WAL size that forces a snapshot + truncation")
	concurrentIngest := flag.String("concurrent-ingest", "atomic",
		"multi-writer ingest mode for families with concurrent variants: "+
			"atomic (shared-memory CAS) or buffered (per-writer local buffers + propagator, wait-free stale reads)")
	flag.Parse()

	switch *concurrentIngest {
	case "atomic":
	case "buffered":
		// Must be selected before recovery: restored entries are
		// constructed through the same serving-mode switch.
		concurrent.SetBufferedServing(true)
	default:
		log.Fatalf("sketchd: -concurrent-ingest must be atomic or buffered, got %q", *concurrentIngest)
	}

	srv := server.New()
	if *dataDir != "" {
		stats, err := srv.EnableDurability(*dataDir, durable.Options{
			FsyncInterval:    *fsyncInterval,
			SnapshotInterval: *snapshotInterval,
			WALMaxBytes:      *walMaxBytes,
			Logf:             log.Printf,
		})
		if err != nil {
			log.Fatalf("sketchd: durability: %v", err)
		}
		log.Printf("sketchd: durable in %s: recovered %d sketches (snapshot lsn %d), replayed %d WAL records",
			*dataDir, stats.SketchesLoaded, stats.SnapshotLSN, stats.RecordsReplayed)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	go func() {
		log.Printf("sketchd listening on %s", *addr)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("sketchd: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop

	// Graceful shutdown: stop accepting requests and drain in-flight
	// ones first, then flush the WAL and write a final snapshot so a
	// clean restart recovers without replaying anything.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("sketchd: shutdown: %v", err)
	}
	if err := srv.CloseDurability(); err != nil {
		log.Printf("sketchd: closing durability: %v", err)
	}
	ops := srv.Ops().Snapshot()
	log.Printf("sketchd: served %d adds in %d batches, %d merges, %d queries",
		ops.Adds, ops.AddBatches, ops.Merges, ops.Queries)
}
