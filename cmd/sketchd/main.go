// Command sketchd serves the sketch library over HTTP: a namespace of
// named sketches (hll, countmin, bloom, kll, theta) with batched
// ingest, queries, mergeable-summary exchange, and /debug/statsz
// counters. See internal/server for the route table and README
// "Running sketchd" for curl examples.
//
// Usage:
//
//	sketchd -addr :7600
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":7600", "listen address")
	flag.Parse()

	srv := server.New()
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	go func() {
		log.Printf("sketchd listening on %s", *addr)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("sketchd: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("sketchd: shutdown: %v", err)
	}
	ops := srv.Ops().Snapshot()
	log.Printf("sketchd: served %d adds in %d batches, %d merges, %d queries",
		ops.Adds, ops.AddBatches, ops.Merges, ops.Queries)
}
