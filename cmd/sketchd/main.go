// Command sketchd serves the sketch library over HTTP: a namespace of
// named sketches (any servable registry family) with batched ingest,
// queries, mergeable-summary exchange, and /debug/statsz counters. See
// internal/server for the route table and README "Running sketchd"
// for curl examples.
//
// With -data-dir set, sketchd is durable: every mutation is appended
// to a write-ahead log (group-committed by a background syncer),
// periodic snapshots truncate the log, and a restart — clean or not —
// recovers every sketch from the latest snapshot plus the WAL tail.
// Without -data-dir the server is in-memory only, exactly as before.
//
// Usage:
//
//	sketchd -addr :7600
//	sketchd -addr :7600 -data-dir /var/lib/sketchd \
//	        -fsync-interval 100ms -snapshot-interval 1m -wal-max-bytes 67108864
//
// -fsync-interval > 0 group-commits on that period (bounded data-loss
// window); 0 fsyncs after every drained batch; negative never fsyncs
// (the OS page cache decides).
//
// -concurrent-ingest=buffered switches hll, countmin, and blockedbloom
// serving to the local-buffer/global-propagation variants: writer-local
// ingest buffers drained by a propagator goroutine, wait-free reads
// with a bounded staleness window (reported as staleness_bound on
// queries). Ideal for many-writer ingest-heavy workloads; atomic (the
// default) keeps reads exact to the last completed batch.
//
// Sketches live in tenant namespaces: /v1/t/{tenant}/sketch/... (or
// the X-Sketch-Tenant header) scopes every call, the bare /v1 paths
// address the "default" tenant unchanged, -tenant-max-sketches and
// -tenant-max-bytes cap each namespace (429 on breach), and sketches
// created with ttl_s are evicted by a WAL-logged background reaper
// every -ttl-sweep-interval.
//
// Two cluster modes turn single sketchds into a fleet (internal/cluster):
//
//	sketchd -addr :7700 -coordinator -shards http://h1:7600,http://h2:7600
//	sketchd -addr :7601 -follow http://h1:7600 [-follow-mirror DIR]
//
// A coordinator serves the same /v1/sketch API, routing ingest across
// the shards on a consistent-hash ring and answering reads by
// scatter-gathering and tree-merging every shard's envelope. A
// follower replays a durable leader's sealed WAL segments into a local
// in-memory namespace — a warm standby whose replication lag the
// leader reports on /v1/status.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/concurrent"
	"repro/internal/durable"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":7600", "listen address")
	dataDir := flag.String("data-dir", "", "durability directory (empty: in-memory only)")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond,
		"WAL group-commit interval (>0 timed, 0 per-batch, <0 never fsync)")
	snapshotInterval := flag.Duration("snapshot-interval", time.Minute,
		"interval between snapshots that truncate the WAL (<=0 disables the timer)")
	walMaxBytes := flag.Int64("wal-max-bytes", 64<<20,
		"WAL size that forces a snapshot + truncation")
	concurrentIngest := flag.String("concurrent-ingest", "atomic",
		"multi-writer ingest mode for families with concurrent variants: "+
			"atomic (shared-memory CAS) or buffered (per-writer local buffers + propagator, wait-free stale reads)")
	coordinator := flag.Bool("coordinator", false,
		"run as a cluster coordinator over -shards instead of serving sketches locally")
	shards := flag.String("shards", "",
		"comma-separated shard base URLs for -coordinator mode")
	vnodes := flag.Int("vnodes", cluster.DefaultVirtualNodes,
		"virtual nodes per shard on the coordinator's consistent-hash ring")
	follow := flag.String("follow", "",
		"leader base URL to replicate from (follower mode; serves a read-only warm standby)")
	followInterval := flag.Duration("follow-interval", 500*time.Millisecond,
		"replication poll interval in follower mode")
	followMirror := flag.String("follow-mirror", "",
		"directory receiving byte-identical copies of shipped WAL segments and snapshots")
	tenantMaxSketches := flag.Int("tenant-max-sketches", 0,
		"per-tenant sketch-count quota (0: unlimited); breaches answer 429")
	tenantMaxBytes := flag.Int64("tenant-max-bytes", 0,
		"per-tenant resident-bytes quota (0: unlimited); breaches answer 429")
	tenantMaxQPS := flag.Int("tenant-max-qps", 0,
		"per-tenant reads-per-second cap over /query and /snapshot (0: unlimited); "+
			"breaches answer 429 + Retry-After without gating ingest or merges")
	queryBudget := flag.Int64("query-budget", 0,
		"per-(tenant,sketch) adaptive-query budget per -query-budget-interval (0: unlimited); "+
			"exhaustion answers 429 + Retry-After — the server-side guard against adaptive attacks")
	queryBudgetInterval := flag.Duration("query-budget-interval", time.Minute,
		"refill window for -query-budget")
	ttlSweep := flag.Duration("ttl-sweep-interval", 30*time.Second,
		"interval between TTL eviction sweeps (<=0 disables the reaper; expired sketches then linger)")
	saltSeeds := flag.Bool("salt-seeds", false,
		"derive per-(tenant,name) hash seeds for creates with no explicit seed, so sketches stop "+
			"sharing one hash function; replicas of the same sketch still derive the same seed "+
			"(use the same setting on every shard and across restarts)")
	slimGather := flag.Bool("slim-gather", false,
		"coordinator mode: scatter-gather reads fetch slim envelopes (?wire=slim) from the shards — "+
			"fewer bytes per gather; families without a slim form still ship full envelopes")
	flag.Parse()

	if *coordinator {
		runCoordinator(*addr, *shards, *vnodes, *slimGather)
		return
	}

	switch *concurrentIngest {
	case "atomic":
	case "buffered":
		// Must be selected before recovery: restored entries are
		// constructed through the same serving-mode switch.
		concurrent.SetBufferedServing(true)
	default:
		log.Fatalf("sketchd: -concurrent-ingest must be atomic or buffered, got %q", *concurrentIngest)
	}

	srv := server.New()
	if *saltSeeds {
		// Before recovery: replayed creates carry stamped seeds, but new
		// creates must salt from the first request on.
		srv.SetSaltSeeds(true)
		log.Printf("sketchd: salting hash seeds per (tenant, sketch)")
	}
	if *tenantMaxSketches > 0 || *tenantMaxBytes > 0 || *tenantMaxQPS > 0 {
		srv.SetTenantQuota(server.TenantQuota{
			MaxSketches: *tenantMaxSketches,
			MaxBytes:    *tenantMaxBytes,
			MaxQPS:      *tenantMaxQPS,
		})
		log.Printf("sketchd: per-tenant quota: max %d sketches, %d resident bytes, %d queries/sec (0 = unlimited)",
			*tenantMaxSketches, *tenantMaxBytes, *tenantMaxQPS)
	}
	if *queryBudget > 0 {
		srv.SetQueryBudget(server.QueryBudget{
			Queries:  *queryBudget,
			Interval: *queryBudgetInterval,
		})
		log.Printf("sketchd: per-sketch query budget: %d reads per %v", *queryBudget, *queryBudgetInterval)
	}
	if *follow != "" && *dataDir != "" {
		// Replicated state is the leader's history; a follower writing
		// its own WAL would interleave two histories on restart.
		log.Fatalf("sketchd: -follow is incompatible with -data-dir (the follower mirrors the leader's log)")
	}
	if *dataDir != "" {
		stats, err := srv.EnableDurability(*dataDir, durable.Options{
			FsyncInterval:    *fsyncInterval,
			SnapshotInterval: *snapshotInterval,
			WALMaxBytes:      *walMaxBytes,
			Logf:             log.Printf,
		})
		if err != nil {
			log.Fatalf("sketchd: durability: %v", err)
		}
		log.Printf("sketchd: durable in %s: recovered %d sketches (snapshot lsn %d), replayed %d WAL records",
			*dataDir, stats.SketchesLoaded, stats.SnapshotLSN, stats.RecordsReplayed)
	}

	// The reaper starts after recovery so restored TTL sketches whose
	// deadlines passed during downtime are swept (and WAL-logged) by the
	// revived server, not resurrected silently.
	srv.StartReaper(*ttlSweep)

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	replCtx, replCancel := context.WithCancel(context.Background())
	defer replCancel()
	if *follow != "" {
		rep := cluster.NewReplica(*follow, srv, cluster.ReplicaOptions{
			PollInterval: *followInterval,
			MirrorDir:    *followMirror,
		})
		go rep.Run(replCtx, func(err error) { log.Printf("sketchd: replication: %v", err) })
		log.Printf("sketchd: following %s (poll %v)", *follow, *followInterval)
	}

	go func() {
		log.Printf("sketchd listening on %s", *addr)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("sketchd: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop

	// Graceful shutdown: stop accepting requests and drain in-flight
	// ones first, then flush the WAL and write a final snapshot so a
	// clean restart recovers without replaying anything.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("sketchd: shutdown: %v", err)
	}
	srv.StopReaper() // before the WAL closes: a mid-sweep eviction still logs
	if err := srv.CloseDurability(); err != nil {
		log.Printf("sketchd: closing durability: %v", err)
	}
	ops := srv.Ops().Snapshot()
	log.Printf("sketchd: served %d adds in %d batches, %d merges, %d queries",
		ops.Adds, ops.AddBatches, ops.Merges, ops.Queries)
}

// runCoordinator serves the cluster-facing /v1/sketch API over a shard
// fleet and blocks until SIGINT/SIGTERM.
func runCoordinator(addr, shardList string, vnodes int, slimGather bool) {
	if shardList == "" {
		log.Fatalf("sketchd: -coordinator requires -shards url1,url2,...")
	}
	coord, err := cluster.NewCoordinator(strings.Split(shardList, ","), cluster.Options{
		VirtualNodes: vnodes,
		SlimGather:   slimGather,
	})
	if err != nil {
		log.Fatalf("sketchd: coordinator: %v", err)
	}
	hs := &http.Server{
		Addr:              addr,
		Handler:           coord,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		log.Printf("sketchd coordinator listening on %s over %d shards", addr, len(coord.Shards()))
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("sketchd: %v", err)
		}
	}()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("sketchd: shutdown: %v", err)
	}
}
