// Command benchdiff compares two benchrun JSON reports (BENCH_*.json,
// or a CI bench-smoke artifact) benchmark by benchmark and flags
// regressions: any benchmark whose ns/op grew by more than -threshold
// (default 10%), and any hot path whose allocs/op rose above the old
// report's figure — the zero-alloc guarantee is part of the contract,
// so a single new alloc/op is a regression at any ns delta.
//
// Usage:
//
//	benchdiff old.json new.json           # report, always exit 0
//	benchdiff -strict old.json new.json   # exit 1 if anything regressed
//	benchdiff -threshold 0.05 a.json b.json
//
// The default mode never fails: microbenchmark noise on shared CI
// runners would otherwise gate merges on scheduler luck. CI runs it
// informationally after bench-smoke; scripts/benchdiff.sh is the
// local entry point. When the two reports disagree on CPU model or
// GOMAXPROCS the diff is printed with a loud warning — across
// machines the numbers are two experiments, not a regression signal.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/benchrun"
)

func main() {
	threshold := flag.Float64("threshold", 0.10, "ns/op growth above this fraction flags a regression")
	strict := flag.Bool("strict", false, "exit nonzero when a regression is flagged")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.10] [-strict] old.json new.json")
		os.Exit(2)
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	regressions := diff(os.Stdout, oldRep, newRep, *threshold)
	if regressions > 0 && *strict {
		os.Exit(1)
	}
}

// diffWireBytes prints the per-family envelope-size comparison (schema
// 3 wire_bytes). Always informational: wire sizes change whenever a
// format version adds a field, which is a review item, not a CI gate.
func diffWireBytes(w *os.File, oldRep, newRep benchrun.Report) {
	if len(oldRep.WireBytes) == 0 && len(newRep.WireBytes) == 0 {
		return
	}
	oldByType := make(map[string]benchrun.WireBytes, len(oldRep.WireBytes))
	for _, wb := range oldRep.WireBytes {
		oldByType[wb.Type] = wb
	}
	fmt.Fprintf(w, "\nwire bytes (reference ingest, informational)\n")
	fmt.Fprintf(w, "%-20s %12s %12s %12s %12s\n", "family", "old full", "new full", "old slim", "new slim")
	for _, nw := range newRep.WireBytes {
		ow, ok := oldByType[nw.Type]
		if !ok {
			fmt.Fprintf(w, "%-20s %12s %12d %12s %12s  (new)\n", nw.Type, "-", nw.FullBytes, "-", slimCol(nw.SlimBytes))
			continue
		}
		delete(oldByType, nw.Type)
		mark := ""
		if nw.FullBytes != ow.FullBytes || nw.SlimBytes != ow.SlimBytes {
			mark = "  changed"
		}
		fmt.Fprintf(w, "%-20s %12d %12d %12s %12s%s\n",
			nw.Type, ow.FullBytes, nw.FullBytes, slimCol(ow.SlimBytes), slimCol(nw.SlimBytes), mark)
	}
	for name := range oldByType {
		fmt.Fprintf(w, "%-20s (removed)\n", name)
	}
}

func slimCol(n int) string {
	if n == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", n)
}

func load(path string) (benchrun.Report, error) {
	var rep benchrun.Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %v", path, err)
	}
	return rep, nil
}

// diff prints the comparison and returns the number of flagged
// regressions.
func diff(w *os.File, oldRep, newRep benchrun.Report, threshold float64) int {
	if oldRep.CPUModel != "" && newRep.CPUModel != "" && oldRep.CPUModel != newRep.CPUModel {
		fmt.Fprintf(w, "WARNING: reports come from different CPUs (%q vs %q); deltas are not comparable\n",
			oldRep.CPUModel, newRep.CPUModel)
	}
	if oldRep.GOMAXPROCS != newRep.GOMAXPROCS {
		fmt.Fprintf(w, "WARNING: GOMAXPROCS differs (%d vs %d); parallel-path deltas are not comparable\n",
			oldRep.GOMAXPROCS, newRep.GOMAXPROCS)
	}
	oldByName := make(map[string]benchrun.Result, len(oldRep.Results))
	for _, r := range oldRep.Results {
		oldByName[r.Name] = r
	}
	fmt.Fprintf(w, "%-28s %12s %12s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	regressions := 0
	for _, nr := range newRep.Results {
		or, ok := oldByName[nr.Name]
		if !ok {
			fmt.Fprintf(w, "%-28s %12s %12.2f %8s  (new)\n", nr.Name, "-", nr.NsPerOp, "-")
			continue
		}
		delete(oldByName, nr.Name)
		delta := 0.0
		if or.NsPerOp > 0 {
			delta = (nr.NsPerOp - or.NsPerOp) / or.NsPerOp
		}
		mark := ""
		if delta > threshold {
			mark = "  REGRESSION"
			regressions++
		} else if delta < -threshold {
			mark = "  improved"
		}
		if nr.AllocsPerOp > or.AllocsPerOp {
			mark += fmt.Sprintf("  ALLOCS %d->%d", or.AllocsPerOp, nr.AllocsPerOp)
			regressions++
		}
		fmt.Fprintf(w, "%-28s %12.2f %12.2f %+7.1f%%%s\n", nr.Name, or.NsPerOp, nr.NsPerOp, 100*delta, mark)
	}
	for name := range oldByName {
		fmt.Fprintf(w, "%-28s (removed)\n", name)
	}
	diffWireBytes(w, oldRep, newRep)
	if regressions > 0 {
		fmt.Fprintf(w, "\n%d benchmark(s) regressed past %.0f%%\n", regressions, 100*threshold)
	} else {
		fmt.Fprintf(w, "\nno regressions past %.0f%%\n", 100*threshold)
	}
	return regressions
}
