// Command sketchbench regenerates the reproduction's evaluation: every
// experiment in DESIGN.md §2 (E1…E24 plus ablations), printed as the
// plain-text tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	sketchbench              # run every experiment
//	sketchbench -run E4,E8   # run selected experiments
//	sketchbench -list        # list experiment ids and titles
//
// The E25 loadgen starts an in-process sketchd by default; pass
// -sketchd http://host:port to drive an externally running daemon
// instead.
//
// Benchmark mode runs the internal/benchrun hot-path microbenchmark
// suite (the same code `go test -bench Hot` runs) and writes the
// results as JSON — the committed BENCH_*.json trajectory files are
// produced this way (BENCH_4.json is current: SF-sketch and slim-wire
// entries plus per-family wire bytes, schema 3; BENCH_3.json added the
// cluster coordinator entries; BENCH_2.json is the cache-layout
// baseline; BENCH_1.json is the pre-layout-work baseline):
//
//	sketchbench -bench                              # 1s per benchmark, writes BENCH_4.json
//	sketchbench -bench -benchtime 100ms -benchout - # quick run to stdout
//
// Compare two reports with cmd/benchdiff (scripts/benchdiff.sh).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/benchrun"
	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	sketchd := flag.String("sketchd", "", "base URL of a running sketchd for the E25 loadgen (default: in-process)")
	bench := flag.Bool("bench", false, "run hot-path microbenchmarks instead of experiments")
	benchtime := flag.Duration("benchtime", time.Second, "per-benchmark measuring time in -bench mode")
	benchout := flag.String("benchout", "BENCH_4.json", "output path for -bench JSON results (- for stdout)")
	testing.Init() // registers test.benchtime, which drives testing.Benchmark
	flag.Parse()

	if *bench {
		runBench(*benchtime, *benchout)
		return
	}

	if *sketchd != "" {
		os.Setenv("SKETCHD_ADDR", *sketchd)
	}

	if *list {
		titles := experiments.Titles()
		for _, id := range experiments.IDs() {
			fmt.Printf("%-5s %s\n", id, titles[id])
		}
		return
	}

	ids := experiments.IDs()
	if *run != "" {
		ids = strings.Split(*run, ",")
	}
	failed := false
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		res, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			failed = true
			continue
		}
		fmt.Printf("=== %s: %s\n", res.ID, res.Title)
		fmt.Printf("paper claim: %s\n\n", res.Claim)
		for _, tbl := range res.Tables {
			fmt.Println(tbl.String())
		}
		for _, note := range res.Notes {
			fmt.Println("note:", note)
		}
		fmt.Printf("(%s completed in %v)\n\n", res.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}

// runBench executes the benchrun suite and writes the JSON report.
func runBench(benchtime time.Duration, out string) {
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	rep := benchrun.Run(func(name string) {
		fmt.Fprintf(os.Stderr, "bench: %s\n", name)
	})
	data, err := rep.MarshalIndent()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", out, len(rep.Results))
}
