// Graphstream demonstrates the paper's graph-sketching application
// (§2, Ahn–Guha–McGregor): maintaining connectivity of a *dynamic*
// graph — edges inserted AND deleted — from linear sketches. A network
// of hosts gains links, partitions when a router's links are deleted,
// and heals, with the sketch tracking the component structure
// throughout; the per-vertex sketches also serialize, so the
// connectivity query could run on a different machine than the
// ingestion.
package main

import (
	"fmt"

	sketch "repro"
)

func main() {
	const n = 32 // hosts
	g := sketch.NewGraphSketch(n, 12, 7)

	// Phase 1: two racks, each internally connected, joined through
	// host 0 (rack A gateway) -- host 16 (rack B gateway).
	for i := 0; i < 15; i++ {
		g.AddEdge(i, i+1) // rack A chain 0..15
	}
	for i := 16; i < 31; i++ {
		g.AddEdge(i, i+1) // rack B chain 16..31
	}
	g.AddEdge(0, 16) // the inter-rack uplink
	fmt.Printf("phase 1: components = %d (want 1 — one fabric)\n", g.ComponentCount())

	// Phase 2: the uplink is removed (maintenance). Only deletions —
	// the case plain incremental union-find cannot handle.
	g.RemoveEdge(0, 16)
	fmt.Printf("phase 2: uplink deleted, components = %d (want 2 — partitioned racks)\n",
		g.ComponentCount())
	fmt.Printf("         host 3 and host 20 connected: %v (want false)\n", g.Connected(3, 20))

	// Phase 3: redundant uplinks come online.
	g.AddEdge(5, 21)
	g.AddEdge(10, 26)
	fmt.Printf("phase 3: redundant uplinks added, components = %d (want 1)\n", g.ComponentCount())

	// Phase 4: one redundant uplink fails — still connected through
	// the other.
	g.RemoveEdge(5, 21)
	fmt.Printf("phase 4: one uplink failed, components = %d (want 1)\n", g.ComponentCount())

	forest := g.SpanningForest()
	fmt.Printf("\nspanning forest has %d edges (want %d for a connected graph)\n",
		len(forest), n-1)
	fmt.Println("sample forest edges:", forest[:3])
}
