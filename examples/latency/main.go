// Latency demonstrates big-data-era telemetry (§3): tracking service
// latency percentiles with mergeable quantile sketches. Twenty
// "servers" each summarize their own request latencies with KLL and
// t-digest; a collector merges the twenty summaries and reads fleet
// percentiles — no raw latencies ever leave the servers.
package main

import (
	"fmt"
	"math"

	sketch "repro"
	"repro/internal/core"
	"repro/internal/randx"
)

func main() {
	const servers = 20
	const perServer = 100_000

	collectorKLL := sketch.NewKLL(200, 999)
	collectorTD := sketch.NewTDigest(100)
	exact := sketch.NewExactQuantiles()

	var wireBytes int
	for s := 0; s < servers; s++ {
		kll := sketch.NewKLL(200, uint64(s))
		td := sketch.NewTDigest(100)
		rng := randx.New(uint64(s) + 100)
		for i := 0; i < perServer; i++ {
			// Lognormal base latency plus a slow-server tail on two hosts.
			ms := math.Exp(rng.Normal()*0.8 + 2.5)
			if s >= 18 {
				ms *= 4 // two degraded servers drive the tail
			}
			kll.Add(ms)
			td.Add(ms)
			exact.Add(ms)
		}
		// Ship the summaries, not the data.
		blob, err := kll.MarshalBinary()
		if err != nil {
			panic(err)
		}
		wireBytes += len(blob)
		var restored sketch.KLLSketch
		if err := restored.UnmarshalBinary(blob); err != nil {
			panic(err)
		}
		if err := collectorKLL.Merge(&restored); err != nil {
			panic(err)
		}
		if err := collectorTD.Merge(td); err != nil {
			panic(err)
		}
	}

	tbl := core.NewTable(
		fmt.Sprintf("Fleet latency, %d servers x %d requests", servers, perServer),
		"percentile", "KLL (merged)", "t-digest (merged)", "exact")
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		tbl.AddRow(fmt.Sprintf("p%g", q*100),
			collectorKLL.Quantile(q), collectorTD.Quantile(q), exact.Quantile(q))
	}
	fmt.Println(tbl.String())
	fmt.Printf("bytes shipped to collector: %d (vs %d for raw latencies)\n",
		wireBytes, exact.SizeBytes())
	fmt.Printf("collector memory: KLL %d bytes, t-digest %d bytes\n",
		collectorKLL.SizeBytes(), collectorTD.SizeBytes())
}
