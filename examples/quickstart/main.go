// Quickstart: a five-minute tour of the sketch facade — distinct
// counting, heavy hitters, quantiles, membership, and the mergeability
// that makes all of them distributed-friendly.
package main

import (
	"fmt"

	sketch "repro"
)

func main() {
	// 1. Count distinct items in bounded memory with HyperLogLog.
	hll := sketch.NewHLL(14, 1) // 2^14 registers, ~0.8% error, 12 KiB
	for i := 0; i < 1_000_000; i++ {
		hll.AddString(fmt.Sprintf("user-%d", i%250_000)) // lots of repeats
	}
	fmt.Printf("distinct users ~ %.0f (true 250000)\n", hll.Estimate())

	// 2. Find heavy hitters with SpaceSaving: k counters, guaranteed to
	// hold everything above N/k.
	ss := sketch.NewSpaceSaving(64)
	for i := 0; i < 100_000; i++ {
		if i%10 < 3 {
			ss.Add("checkout", 1) // a hot endpoint
		} else {
			ss.Add(fmt.Sprintf("page-%d", i%5000), 1)
		}
	}
	top := ss.Entries()
	fmt.Printf("hottest item: %s (~%d hits)\n", top[0].Item, top[0].Count)

	// 3. Track latency quantiles with KLL in a few KiB.
	kll := sketch.NewKLL(200, 2)
	for i := 0; i < 500_000; i++ {
		kll.Add(float64(i%1000) / 10) // synthetic 0-99.9ms latencies
	}
	fmt.Printf("p50=%.1fms p99=%.1fms (n=%d, %d bytes)\n",
		kll.Quantile(0.5), kll.Quantile(0.99), kll.N(), kll.SizeBytes())

	// 4. Approximate set membership with a Bloom filter.
	seen := sketch.NewBloomWithEstimates(100_000, 0.01, 3)
	seen.AddString("alice@example.com")
	fmt.Printf("alice known: %v, mallory known: %v\n",
		seen.ContainsString("alice@example.com"), seen.ContainsString("mallory@example.com"))

	// 5. Merge: sketches built on different machines combine without
	// accuracy loss — the Mergeable Summaries property.
	shard1, shard2 := sketch.NewHLL(12, 9), sketch.NewHLL(12, 9)
	for i := 0; i < 50_000; i++ {
		shard1.AddUint64(uint64(i))
		shard2.AddUint64(uint64(i + 25_000)) // half overlap
	}
	if err := shard1.Merge(shard2); err != nil {
		panic(err)
	}
	fmt.Printf("merged distinct ~ %.0f (true 75000)\n", shard1.Estimate())

	// 6. Everything serializes for wire transfer or storage.
	blob, err := shard1.MarshalBinary()
	if err != nil {
		panic(err)
	}
	var restored sketch.HLLSketch
	if err := restored.UnmarshalBinary(blob); err != nil {
		panic(err)
	}
	fmt.Printf("restored from %d bytes, estimate %.0f\n", len(blob), restored.Estimate())
}
