// Adreach demonstrates the paper's online-advertising application
// (§3): campaign reach measurement with mergeable HLL sketches —
// distinct users per campaign, sliced by demographics, rolled up
// without double counting, and compared against exact ground truth.
package main

import (
	"fmt"

	"repro/internal/adtech"
	"repro/internal/core"
)

func main() {
	const impressions = 400_000
	gen := adtech.NewGenerator(8, 150_000, 7)
	rep := adtech.NewReporter(14, 8)

	exact := map[int]map[uint64]bool{}
	for i := 0; i < impressions; i++ {
		imp := gen.Next()
		rep.Record(imp)
		if exact[imp.CampaignID] == nil {
			exact[imp.CampaignID] = map[uint64]bool{}
		}
		exact[imp.CampaignID][imp.UserID] = true
	}

	fmt.Printf("%d impressions recorded into %d sketches (%d KiB total)\n\n",
		impressions, rep.SketchCount(), rep.SizeBytes()/1024)

	tbl := core.NewTable("Reach per campaign", "campaign", "sketch", "exact", "relerr")
	for _, c := range rep.Campaigns() {
		est := rep.Reach(c)
		truth := float64(len(exact[c]))
		tbl.AddRow(c, est, truth, core.RelErr(est, truth))
	}
	fmt.Println(tbl.String())

	// Slice and dice: campaign 1 by region and device.
	for _, dim := range []string{"region", "device"} {
		fmt.Printf("campaign 1 by %s:\n", dim)
		values := adtech.Regions
		if dim == "device" {
			values = adtech.Devices
		}
		for _, v := range values {
			fmt.Printf("  %-8s ~%.0f users\n", v, rep.SliceReach(1, dim, v))
		}
		rollup, err := rep.RollupReach(1, dim)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  rollup == campaign total: %v\n\n", rollup == rep.Reach(1))
	}

	combined, err := rep.CombinedReach(rep.Campaigns()...)
	if err != nil {
		panic(err)
	}
	var naiveSum float64
	for _, c := range rep.Campaigns() {
		naiveSum += rep.Reach(c)
	}
	fmt.Printf("naive sum of reaches:     %.0f (double counts multi-campaign users)\n", naiveSum)
	fmt.Printf("deduplicated total reach: %.0f\n", combined)
}
