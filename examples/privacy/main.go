// Privacy demonstrates the paper's private-data-analysis application
// (§3): collecting a categorical distribution from a population under
// local differential privacy with both deployed designs the paper
// names — RAPPOR (Bloom filter + randomized response, Google) and the
// private count-mean sketch (Count-Min + randomized response, Apple).
package main

import (
	"fmt"

	sketch "repro"
	"repro/internal/core"
	"repro/internal/randx"
)

func main() {
	const nClients = 30_000
	const eps = 2.0
	browsers := []string{"chrome", "safari", "firefox", "edge", "brave", "other"}
	shares := []float64{0.45, 0.25, 0.12, 0.1, 0.05, 0.03}

	// Each simulated client holds one private value.
	rng := randx.New(11)
	values := make([]string, nClients)
	truth := map[string]float64{}
	for c := range values {
		u := rng.Float64()
		acc := 0.0
		for i, w := range shares {
			acc += w
			if u < acc || i == len(shares)-1 {
				values[c] = browsers[i]
				break
			}
		}
		truth[values[c]]++
	}

	// --- RAPPOR pipeline ---
	rap := sketch.NewRAPPOR(64, 2, eps, 13)
	reports := make([][]bool, nClients)
	for c, v := range values {
		reports[c] = rap.Encode(v, uint64(c)+1) // leaves the client ε-DP
	}
	rapEst := rap.EstimateFrequencies(rap.Aggregate(reports), nClients, browsers)

	// --- Apple-style private CMS pipeline ---
	cms := sketch.NewPrivateCMS(256, 16, eps, 17)
	for c, v := range values {
		cms.Absorb(cms.EncodeClient(v, uint64(c)+100_000))
	}

	tbl := core.NewTable(
		fmt.Sprintf("Private browser-share estimation, %d clients, eps=%.1f", nClients, eps),
		"value", "true share", "RAPPOR est", "CMS est")
	for _, b := range browsers {
		tbl.AddRow(b,
			truth[b]/nClients,
			rapEst[b]/nClients,
			cms.Estimate(b)/nClients)
	}
	fmt.Println(tbl.String())
	fmt.Printf("per-bit flip probability at eps=%.1f: %.3f (RAPPOR)\n", eps, rap.F())
	fmt.Println("each uploaded report is individually differentially private;")
	fmt.Println("accuracy comes from aggregating many noisy reports — the paper's")
	fmt.Println("point that sketches 'concentrate the information from many individuals'.")
}
