// Netmon is the paper's ISP-era scenario (§3, "Massive Data Streams"):
// a Gigascope-style monitor over a synthetic backbone flow stream,
// maintaining per-protocol groups of sketches in one pass — distinct
// sources (HLL), heavy-hitter destinations (SpaceSaving), flow-size
// quantiles (KLL) and per-source traffic volume (Count-Min).
package main

import (
	"fmt"

	sketch "repro"
	"repro/internal/core"
	"repro/internal/stream"
)

func main() {
	const flows = 500_000
	gen := stream.NewFlowGen(50_000, 1.2, 42)

	engine := stream.NewEngine(
		func(f stream.Flow) string {
			if f.Proto == 6 {
				return "tcp"
			}
			return "udp"
		},
		stream.AggregateSpec{
			Name: "distinct-sources",
			New:  func() core.Updater { return sketch.NewHLL(13, 1) },
			Key:  func(f stream.Flow) []byte { return f.SrcKey() },
		},
		stream.AggregateSpec{
			Name: "hot-destinations",
			New:  func() core.Updater { return sketch.NewSpaceSaving(128) },
			Key:  func(f stream.Flow) []byte { return f.DstKey() },
		},
		stream.AggregateSpec{
			Name: "distinct-flows",
			New:  func() core.Updater { return sketch.NewHLL(13, 2) },
			Key:  func(f stream.Flow) []byte { return f.FiveTuple() },
		},
	)

	// Separate latency-style quantile tracking for flow sizes.
	sizes := sketch.NewTDigest(100)
	volume := sketch.NewCountMin(4096, 5, 3)

	for i := 0; i < flows; i++ {
		f := gen.Next()
		engine.Process(f)
		sizes.Add(float64(f.Bytes))
		volume.Add(f.SrcKey(), uint64(f.Bytes))
	}

	fmt.Printf("processed %d flows into %d sketches across %d groups\n\n",
		engine.Events(), engine.SketchCount(), engine.GroupCount())

	for _, proto := range engine.Groups() {
		srcs := engine.Aggregate(proto, "distinct-sources").(*sketch.HLLSketch)
		flowsHLL := engine.Aggregate(proto, "distinct-flows").(*sketch.HLLSketch)
		hot := engine.Aggregate(proto, "hot-destinations").(*sketch.SpaceSaving)
		fmt.Printf("[%s] distinct sources ~%.0f, distinct 5-tuples ~%.0f\n",
			proto, srcs.Estimate(), flowsHLL.Estimate())
		for i, e := range hot.Entries() {
			if i >= 3 {
				break
			}
			fmt.Printf("      top dst %d: %x (~%d flows)\n", i+1, e.Item, e.Count)
		}
	}

	fmt.Printf("\nflow sizes: p50=%.0fB p90=%.0fB p99=%.0fB p999=%.0fB\n",
		sizes.Quantile(0.5), sizes.Quantile(0.9), sizes.Quantile(0.99), sizes.Quantile(0.999))

	// Per-source volume accounting for the top talker.
	probe := gen.Next()
	fmt.Printf("sample source %s total bytes ~%d (count-min upper bound)\n",
		probe.String()[:12], volume.Estimate(probe.SrcKey()))
}
