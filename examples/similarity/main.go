// Similarity demonstrates the paper's similarity-search application
// (§2/§3): LSH "builds a sketch of a large object, such that similar
// objects are likely to have similar sketches", powering multimedia
// search then and embedding retrieval now. The demo indexes documents
// as shingle sets under banded MinHash, finds near-duplicates, and
// compares SimHash cosine estimates on synthetic embeddings.
package main

import (
	"fmt"
	"strings"

	sketch "repro"
	"repro/internal/randx"
)

// shingles cuts a document into overlapping word 3-grams.
func shingles(doc string) []string {
	words := strings.Fields(strings.ToLower(doc))
	var out []string
	for i := 0; i+3 <= len(words); i++ {
		out = append(out, strings.Join(words[i:i+3], " "))
	}
	return out
}

func signatureOf(doc string, k int) *sketch.MinHash {
	m := sketch.NewMinHash(k, 42)
	for _, sh := range shingles(doc) {
		m.AddString(sh)
	}
	return m
}

func main() {
	docs := map[string]string{
		"original":  "the quick brown fox jumps over the lazy dog while the cat watches from the fence and the birds sing in the morning light over the quiet garden",
		"near-dup":  "the quick brown fox jumps over the lazy dog while the cat watches from the fence and the birds sing in the evening light over the quiet garden",
		"partial":   "the quick brown fox jumps over the lazy dog but everything else in this document is completely different from the original text in every way imaginable",
		"unrelated": "database systems use sketches to summarize massive data streams with compact probabilistic data structures that trade accuracy for space efficiency",
	}

	const bands, rows = 16, 4
	ix := sketch.NewLSHIndex(bands, rows)
	sigs := map[string]*sketch.MinHash{}
	for name, doc := range docs {
		sigs[name] = signatureOf(doc, bands*rows)
		if name != "original" {
			if err := ix.Add(name, sigs[name]); err != nil {
				panic(err)
			}
		}
	}

	fmt.Println("query: the 'original' document against the index")
	fmt.Printf("candidates sharing a band: %v\n\n", ix.Candidates(sigs["original"]))
	for _, name := range []string{"near-dup", "partial", "unrelated"} {
		sim, err := sigs["original"].Similarity(sigs[name])
		if err != nil {
			panic(err)
		}
		fmt.Printf("jaccard(original, %-9s) ~ %.2f\n", name, sim)
	}

	fmt.Println("\nverified near-duplicates at similarity >= 0.5:",
		ix.Query(sigs["original"], 0.5))
	fmt.Printf("analytic retrieval probability at s=0.9: %.3f, at s=0.2: %.3f\n",
		ix.CandidateProbability(0.9), ix.CandidateProbability(0.2))

	// SimHash on synthetic "embeddings": the modern face of the same
	// idea (the paper: embeddings still rely on vector similarity that
	// LSH supports).
	const d = 128
	sh := sketch.NewSimHash(d, 64, 7)
	rng := randx.New(8)
	base := make([]float64, d)
	for i := range base {
		base[i] = rng.Normal()
	}
	fmt.Println("\nSimHash on synthetic embeddings (64-bit signatures):")
	for _, noise := range []float64{0.1, 0.5, 2.0} {
		v := make([]float64, d)
		for i := range v {
			v[i] = base[i] + noise*rng.Normal()
		}
		est := sh.Similarity(sh.Hash(base), sh.Hash(v))
		fmt.Printf("  noise %.1f: estimated cosine %.3f\n", noise, est)
	}
}
