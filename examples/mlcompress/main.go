// Mlcompress demonstrates the paper's machine-learning application
// (§3): FetchSGD-style federated training where workers upload
// Count-Sketch-compressed gradients instead of dense vectors, cutting
// per-round communication while converging to a comparable loss.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fetchsgd"
)

func main() {
	const (
		dim     = 1024
		workers = 8
		samples = 2048
		rounds  = 300
	)
	task := fetchsgd.NewTask(dim, 12, 0.05, 21)
	fleet := fetchsgd.NewWorkers(task, workers, samples, 23)

	zero := fetchsgd.Loss(fleet, make([]float64, dim))
	fmt.Printf("federated linear regression: d=%d, %d workers, %d samples\n", dim, workers, samples)
	fmt.Printf("loss before training: %.3f\n\n", zero)

	base := fetchsgd.TrainUncompressed(task, fleet, rounds, 0.3)

	tbl := core.NewTable("Communication vs accuracy after 300 rounds",
		"method", "uplink bytes/round/worker", "compression", "final MSE")
	tbl.AddRow("dense SGD", base.BytesPerRound, 1.0, base.FinalLoss)
	for _, cfg := range []fetchsgd.FetchSGDConfig{
		{Rows: 5, Cols: 160, K: 64, LR: 0.06, Momentum: 0.5, Seed: 31},
		{Rows: 5, Cols: 128, K: 64, LR: 0.05, Momentum: 0.5, Seed: 37},
		{Rows: 5, Cols: 64, K: 64, LR: 0.03, Momentum: 0.5, Seed: 41},
	} {
		res := fetchsgd.TrainFetchSGD(task, fleet, rounds, cfg)
		tbl.AddRow(fmt.Sprintf("fetchsgd %dx%d", cfg.Rows, cfg.Cols),
			res.BytesPerRound,
			float64(base.BytesPerRound)/float64(res.BytesPerRound),
			res.FinalLoss)
	}
	fmt.Println(tbl.String())
	fmt.Println("worker sketches merge by linearity at the server — the same")
	fmt.Println("mergeability that powers every other sketch in this library.")
}
